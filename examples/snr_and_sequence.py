#!/usr/bin/env python3
"""Two power-analysis utilities beyond the paper's core pipeline.

1. The classical **SNR field** (Mangard): where in the window/plane does
   each classification task leak?  Rendered as an ASCII heatmap.
2. **Sequence-aware decoding** (the paper's §6 outlook): combining the
   hierarchy's per-window posteriors with an instruction-transition
   prior, Viterbi-decoded over a firmware run.
"""

import numpy as np

from repro.core import SequenceDisassembler, SideChannelDisassembler
from repro.experiments.configs import stationary_config
from repro.experiments.plots import ascii_heatmap
from repro.experiments.workloads import capture_group_set
from repro.features.snr import snr_report
from repro.isa import assemble
from repro.isa.groups import classification_classes
from repro.ml import QDA
from repro.power import Acquisition

FIRMWARE = """
    ldi r16, 0x3A
    ldi r17, 0xC5
    eor r17, r16
    add r16, r17
    lsr r16
    and r16, r17
"""


def main() -> None:
    acq = Acquisition(seed=77)

    # --- 1. SNR: where does the instruction-identity leak live?
    trace_set = acq.capture_instruction_set(["ADC", "AND", "LDS"], 150, 5)
    time_report = snr_report(trace_set)
    print(
        f"time-domain SNR: max {time_report['max']:.1f} at sample "
        f"{time_report['argmax'][0]} "
        f"({time_report['exploitable'] * 100:.0f} % of points exploitable)"
    )
    cwt_report = snr_report(trace_set, use_cwt=True)
    print(
        f"time-frequency SNR: max {cwt_report['max']:.1f} at "
        f"(scale idx, t) = {cwt_report['argmax']}"
    )
    print()
    print(
        ascii_heatmap(
            cwt_report["field"], width=90, height=18,
            title="SNR over the 50 x 315 time-frequency plane "
            "(ADC / AND / LDS)",
        )
    )

    # --- 2. Sequence-aware decoding of a firmware run.
    print("\ntraining the hierarchy for groups 1-3 ...")
    dis = SideChannelDisassembler(stationary_config(25), classifier_factory=QDA)
    dis.fit_group_level(capture_group_set(acq, 150, 5))
    for group in (1, 2, 3):
        dis.fit_instruction_level(
            group,
            acq.capture_instruction_set(
                classification_classes(group), 150, 5
            ),
        )
    sequencer = SequenceDisassembler(dis)
    sequencer.fit_prior_from_assembly([FIRMWARE * 2])

    bench = Acquisition(seed=77, program_shift=False)
    capture = bench.capture_program(FIRMWARE * 6)
    truth = [i.spec.key for i in assemble(FIRMWARE * 6)]
    independent = sequencer.decode_independent(capture.windows)
    decoded = sequencer.decode(capture.windows)
    acc_i = np.mean([a == b for a, b in zip(independent, truth)])
    acc_s = np.mean([a == b for a, b in zip(decoded, truth)])
    print(
        f"per-window decoding: {acc_i * 100:.1f} % correct; "
        f"with the sequence prior: {acc_s * 100:.1f} %"
    )
    print("decoded one iteration:", " -> ".join(decoded[:6]).lower())


if __name__ == "__main__":
    main()
