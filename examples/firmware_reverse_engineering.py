#!/usr/bin/env python3
"""Reverse-engineer unknown firmware from its power trace alone.

Deploys the full three-level hierarchy of the paper (§2.1): group ->
instruction -> registers.  A "secret" firmware (never shown to the
classifier) runs on the device; the side-channel disassembler recovers its
instruction stream — opcodes plus register operands — from one window per
executed instruction, and we score the recovery against ground truth.

Note the caveat the paper itself makes (§6: real code is future work):
fixed real-code contexts introduce systematic per-position biases, so
positions are majority-voted across loop iterations.
"""

import numpy as np

from repro.core import SideChannelDisassembler
from repro.core.malware import majority_stream
from repro.experiments.configs import register_config, stationary_config
from repro.experiments.workloads import capture_group_set
from repro.isa import assemble
from repro.isa.groups import classification_classes
from repro.ml import QDA
from repro.power import Acquisition

#: The "unknown" firmware: a checksum-ish loop over in-register data.
SECRET_FIRMWARE = """
    ldi r16, 0x1D   ; polynomial-ish constant
    ldi r17, 0xA5   ; data byte
    eor r17, r16
    lsr r17
    mov r18, r17
    and r18, r16
    add r17, r18
    swap r17
"""

N_TRAIN = 200
N_PROGRAMS = 8
N_EXECUTIONS = 20
REGISTERS = (0, 4, 8, 16, 17, 18, 24, 28)


def main() -> None:
    acq = Acquisition(seed=99)
    print("building templates for groups 1-3 and registers...")
    dis = SideChannelDisassembler(
        stationary_config(30), classifier_factory=QDA
    )
    dis.fit_group_level(capture_group_set(acq, N_TRAIN, N_PROGRAMS))
    for group in (1, 2, 3):
        dis.fit_instruction_level(
            group,
            acq.capture_instruction_set(
                classification_classes(group), N_TRAIN, N_PROGRAMS
            ),
        )
    for role in ("Rd", "Rr"):
        dis.fit_register_level(
            role,
            acq.capture_register_set(role, REGISTERS, N_TRAIN, N_PROGRAMS),
            feature_config=register_config(30),
        )

    print("capturing the unknown firmware's power trace...")
    bench = Acquisition(seed=99, program_shift=False)
    capture = bench.capture_program(
        "\n".join([SECRET_FIRMWARE] * N_EXECUTIONS)
    )
    observed = dis.disassemble(capture.windows, adapt=False)
    period = len(assemble(SECRET_FIRMWARE))
    recovered = majority_stream(observed, period)

    truth = assemble(SECRET_FIRMWARE)
    print(f"\n{'recovered from power':<28}   ground truth")
    print("-" * 58)
    n_opcode = n_full = 0
    for instr, golden in zip(recovered, truth):
        golden_regs = [
            v for op, v in zip(golden.spec.operands, golden.values)
            if op.kind.name in ("REG", "REG_HIGH")
        ]
        opcode_ok = instr.key == golden.spec.key
        regs_ok = opcode_ok and (
            (instr.rd is None or not golden_regs or instr.rd == golden_regs[0])
            and (
                instr.rr is None
                or len(golden_regs) < 2
                or instr.rr == golden_regs[1]
            )
        )
        n_opcode += opcode_ok
        n_full += regs_ok
        marker = "  " if regs_ok else ("~ " if opcode_ok else "! ")
        print(f"{marker}{instr.text:<28} | {golden.text()}")
    print("-" * 58)
    print(
        f"opcodes recovered: {n_opcode}/{len(truth)}, "
        f"with registers: {n_full}/{len(truth)} "
        f"(majority over {N_EXECUTIONS} executions)"
    )


if __name__ == "__main__":
    main()
