#!/usr/bin/env python3
"""Covariate shift in action: one trained device, five deployed siblings.

Reproduces the §4/§5.5/§5.6 storyline interactively:

1. templates trained on device "train" in one profiling campaign;
2. five sibling chips deployed in fresh measurement sessions running a
   real (mixed-instruction) program;
3. classification with and without covariate shift adaptation, plus the
   :class:`~repro.core.ShiftReport` diagnostic quantifying how far the
   feature distribution moved.
"""

import numpy as np

from repro.core import ShiftReport, SideChannelDisassembler
from repro.experiments.configs import csa_config_full, no_csa_config
from repro.ml import QDA
from repro.power import Acquisition, SessionShift, make_devices

CLASSES = ["ADC", "AND"]
N_TRAIN = 600
N_PROGRAMS = 19


def main() -> None:
    train_device, targets = make_devices(5, seed=7)
    profiling = Acquisition(device=train_device, seed=2018)
    print(
        f"profiling {CLASSES} on device {train_device.name!r}: "
        f"naive {N_TRAIN} traces/class over 9 files, "
        f"CSA over {N_PROGRAMS} files"
    )
    # The paper's two training regimes: 9 program files for the naive
    # templates, 19 for the adapted ones (§5.5).
    train_naive = profiling.capture_instruction_set(CLASSES, N_TRAIN, 9)
    train_csa = profiling.capture_instruction_set(
        CLASSES, N_TRAIN, N_PROGRAMS
    )

    naive = SideChannelDisassembler(no_csa_config(), classifier_factory=QDA)
    naive_model = naive.fit_instruction_level(1, train_naive)
    adapted = SideChannelDisassembler(
        csa_config_full(), classifier_factory=QDA
    )
    adapted_model = adapted.fit_instruction_level(1, train_csa)

    print(f"\n{'device':>8} {'naive SR':>10} {'CSA SR':>10} {'mean shift':>12}")
    for index, device in enumerate(targets):
        session = SessionShift.sample(np.random.default_rng(500 + index))
        deployed = Acquisition(
            device=device, seed=3000 + index, session=session
        )
        test = deployed.capture_mixed_program(
            CLASSES, n_per_class=150, program_id=index
        )
        naive_sr = naive_model.score(test)
        csa_sr = adapted_model.score(test)
        shift = ShiftReport.between(
            naive_model.pipeline.transform(train_naive.traces, adapt=False),
            naive_model.pipeline.transform(test.traces, adapt=False),
        )
        print(
            f"{device.name:>8} {naive_sr * 100:9.1f}% {csa_sr * 100:9.1f}% "
            f"{shift.mean_shift:11.2f}s"
            + ("  << shifted" if shift.is_shifted else "")
        )
    print(
        "\nnaive templates ride the highest KL peaks: on a lucky sibling "
        "they still work,\nbut when the session drift lands on those "
        "features the SR collapses toward chance.\nCSA (stable feature "
        "points + batch normalization) trades a little peak accuracy\n"
        "for consistency across every deployed device — the paper's "
        "Table 4 behaviour."
    )


if __name__ == "__main__":
    main()
