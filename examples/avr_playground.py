#!/usr/bin/env python3
"""The substrate by itself: assemble, simulate, render, inspect.

No machine learning here — this example tours the layers the disassembler
stands on: the AVR assembler, the functional core simulator, the
microarchitectural power model, and the CWT.
"""

import numpy as np

from repro.dsp import CWT
from repro.isa import assemble, disassemble_text
from repro.power import PowerModel
from repro.sim import AvrCpu, pipeline_slots


PROGRAM = """
    ldi r24, 10         ; loop counter
    ldi r16, 0x5A
    clr r17
loop:
    eor r17, r16        ; accumulate
    lsr r16
    dec r24
    brne loop
    sts 0x0123, r17     ; store result
    break
"""


def main() -> None:
    # 1. Assemble and round-trip through the static disassembler.
    instructions = assemble(PROGRAM)
    words = [w for i in instructions for w in i.encode()]
    print("machine code:", " ".join(f"{w:04X}" for w in words))
    print("\nstatic disassembly:")
    print(disassemble_text(words))

    # 2. Execute on the functional core.
    cpu = AvrCpu(PROGRAM)
    events = cpu.run()
    print(f"\nexecuted {len(events)} instructions, {cpu.cycle_count} cycles")
    print(f"result: sram[0x0123] = 0x{cpu.state.load(0x0123):02X}")
    print(f"SREG = 0b{cpu.state.sreg:08b}")

    # 3. Pipeline view (execute stage vs concurrent fetch).
    print("\nfirst pipeline slots:")
    for slot in pipeline_slots(events)[:5]:
        fetched = (
            f"{slot.fetch_words[0]:04X}" if slot.fetch_words else "----"
        )
        print(
            f"  exec {slot.execute.instruction.text():<16}"
            f" | fetching {fetched}"
        )

    # 4. Render the power side channel and look at one window.
    model = PowerModel()
    trace = model.render_events(events)
    window = model.window(trace, 3)  # the first 'eor r17, r16'
    print(
        f"\npower trace: {len(trace)} samples; window of instruction 3 "
        f"has {len(window)} samples "
        f"(mean {window.mean():.2f}, peak {window.max():.2f} units)"
    )

    # 5. Map the window into the paper's time-frequency plane.
    cwt = CWT(len(window))
    image = cwt.transform(window)
    j, k = np.unravel_index(np.argmax(image), image.shape)
    print(
        f"CWT image: {image.shape[0]} scales x {image.shape[1]} samples; "
        f"strongest coefficient at scale {cwt.scales[j]:.1f} samples, "
        f"t={k}"
    )


if __name__ == "__main__":
    main()
