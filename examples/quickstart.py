#!/usr/bin/env python3
"""Quickstart: profile a handful of instructions and disassemble traces.

Walks the full loop of the DAC'18 paper on the simulated bench:

1. capture labelled profiling traces for a few instruction classes;
2. fit the feature pipeline (CWT -> KL/DNVP selection -> PCA) and a QDA
   template classifier;
3. classify fresh traces from a held-out capture and print the paper's
   successful recognition rate (SR).

Runs in well under a minute.  See ``firmware_reverse_engineering.py`` for
the full three-level hierarchy and ``malware_detection.py`` for the §5.7
case study.
"""

import numpy as np

from repro.core import SideChannelDisassembler
from repro.features import FeatureConfig
from repro.ml import QDA, classification_report
from repro.power import Acquisition


def main() -> None:
    classes = ["ADD", "EOR", "LDS", "RJMP", "SEC"]
    print(f"profiling {classes} on the simulated ATMega328P bench...")

    # One Acquisition = one device on one measurement bench.
    acq = Acquisition(seed=42)
    trace_set = acq.capture_instruction_set(
        classes, n_per_class=240, n_programs=8
    )
    train, test = trace_set.split_random(
        train_fraction=0.8, rng=np.random.default_rng(0)
    )
    print(
        f"captured {len(trace_set)} traces of {trace_set.n_samples} samples "
        f"({trace_set.meta['n_programs']} program files per class)"
    )

    # The paper's pipeline: CWT, KL-divergence DNVP selection, PCA, QDA.
    config = FeatureConfig(
        kl_threshold="auto:0.9",  # within-class stability filter
        top_k=8,                  # DNVP points kept per class pair
        n_components=25,          # principal components
    )
    disassembler = SideChannelDisassembler(config, classifier_factory=QDA)
    model = disassembler.fit_instruction_level(group=1, trace_set=train)
    print(
        f"selected {model.pipeline.n_points} unified feature points "
        f"from the 50x315 time-frequency plane"
    )

    predictions = model.predict(test.traces)
    print()
    print(classification_report(test.labels, predictions, test.label_names))

    # Single-trace use: which instruction produced this power window?
    window = test.traces[:1]
    predicted = model.predict_keys(window)[0]
    truth = test.label_names[test.labels[0]]
    print(f"\nsingle trace: predicted {predicted!r}, truth {truth!r}")


if __name__ == "__main__":
    main()
