"""Fixture tests for every replint rule: each must fire on a seeded
violation and stay quiet on the compliant twin."""

import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis import run
from repro.analysis.cli import main
from repro.analysis.core import parse_suppressions

REPO = Path(__file__).resolve().parents[2]


def write(tmp_path: Path, rel: str, text: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dedent(text), encoding="utf-8")
    return path


def lint(*paths) -> list:
    return run([str(p) for p in paths], n_jobs=1).findings


def codes(findings) -> list:
    return [f.code for f in findings]


class TestRep001KnobRegistry:
    def test_fires_on_raw_environ(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/rogue.py",
            '''
            import os
            __all__ = ["value"]
            value = os.environ.get("PATH")
            ''',
        )
        assert "REP001" in codes(lint(tmp_path))

    def test_fires_on_os_getenv_and_from_import(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/rogue.py",
            '''
            import os
            from os import environ
            __all__ = ["value"]
            value = os.getenv("HOME")
            ''',
        )
        found = codes(lint(tmp_path))
        assert found.count("REP001") == 2

    def test_quiet_in_env_module(self, tmp_path):
        write(
            tmp_path,
            "src/repro/util/env.py",
            '''
            import os
            __all__ = ["read"]
            def read(name):
                return os.environ.get(name, "")
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_fires_on_undeclared_knob_literal(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/rogue.py",
            '''
            from ..util.env import env_int
            __all__ = ["value"]
            value = env_int("REPRO_NOT_DECLARED", 3)
            ''',
        )
        found = lint(tmp_path)
        assert "REP001" in codes(found)
        assert "REPRO_NOT_DECLARED" in found[0].message

    def test_quiet_on_declared_and_test_namespace_knobs(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/fine.py",
            '''
            from ..util.knobs import get_flag
            from ..util.env import env_int
            __all__ = ["a", "b"]
            a = get_flag("REPRO_BATCHED_TRAIN")
            b = env_int("REPRO_TEST_WHATEVER", 1)
            ''',
        )
        assert codes(lint(tmp_path)) == []


class TestRep002Parity:
    PAIR = '''
    __all__ = ["frob", "frob_reference"]
    def frob(x):
        return x
    def frob_reference(x):
        return x
    '''

    def test_fires_without_a_parity_test(self, tmp_path):
        write(tmp_path, "src/repro/dsp/frob.py", self.PAIR)
        found = lint(tmp_path)
        assert codes(found) == ["REP002"]
        assert "frob_reference" in found[0].message

    def test_quiet_when_a_test_references_both(self, tmp_path):
        write(tmp_path, "src/repro/dsp/frob.py", self.PAIR)
        write(
            tmp_path,
            "tests/dsp/test_frob.py",
            '''
            from repro.dsp.frob import frob, frob_reference
            def test_parity():
                assert frob(1) == frob_reference(1)
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_needs_both_names_in_one_test_module(self, tmp_path):
        write(tmp_path, "src/repro/dsp/frob.py", self.PAIR)
        write(
            tmp_path,
            "tests/dsp/test_half.py",
            '''
            from repro.dsp.frob import frob
            def test_fast_only():
                assert frob(1) == 1
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP002"]

    def test_private_references_are_exempt(self, tmp_path):
        write(
            tmp_path,
            "src/repro/dsp/frob.py",
            '''
            __all__ = []
            def _frob(x):
                return x
            def _frob_reference(x):
                return x
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_method_pairs_are_checked(self, tmp_path):
        write(
            tmp_path,
            "src/repro/dsp/frob.py",
            '''
            __all__ = ["Frobber"]
            class Frobber:
                def transform(self, x):
                    return x
                def transform_reference(self, x):
                    return x
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP002"]


class TestRep003Determinism:
    def test_fires_on_global_np_random(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/bad.py",
            '''
            import numpy as np
            __all__ = ["noise"]
            def noise(n):
                return np.random.randn(n)
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP003"]

    def test_quiet_on_seeded_generator(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/good.py",
            '''
            import numpy as np
            __all__ = ["noise"]
            def noise(n, seed):
                rng = np.random.default_rng(seed)
                return rng.standard_normal(n)
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_fires_on_wall_clock(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/clock.py",
            '''
            import time
            __all__ = ["stamp"]
            def stamp():
                return time.time()
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP003"]

    def test_fires_on_set_iteration(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/sets.py",
            '''
            __all__ = ["walk"]
            def walk(items):
                out = []
                for item in set(items):
                    out.append(item)
                return out
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP003"]

    def test_quiet_on_sorted_set(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/sets.py",
            '''
            __all__ = ["walk"]
            def walk(items):
                return [i for i in sorted(set(items))]
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_fires_on_list_over_set(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/sets.py",
            '''
            __all__ = ["walk"]
            def walk(items):
                return list({i for i in items})
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP003"]

    def test_tests_are_out_of_scope(self, tmp_path):
        write(
            tmp_path,
            "tests/test_messy.py",
            '''
            import numpy as np
            def test_x():
                return np.random.randn(3)
            ''',
        )
        assert codes(lint(tmp_path)) == []


class TestRep004AccumulationDtype:
    def test_fires_in_features_scope(self, tmp_path):
        write(
            tmp_path,
            "src/repro/features/stats.py",
            '''
            import numpy as np
            __all__ = ["centroid"]
            def centroid(x):
                return x.mean(axis=0)
            ''',
        )
        found = lint(tmp_path)
        assert codes(found) == ["REP004"]

    def test_quiet_with_explicit_dtype(self, tmp_path):
        write(
            tmp_path,
            "src/repro/features/stats.py",
            '''
            import numpy as np
            __all__ = ["centroid"]
            def centroid(x):
                return np.sum(x, axis=0, dtype=np.float64)
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_np_function_form_is_flagged(self, tmp_path):
        write(
            tmp_path,
            "src/repro/ml/suffstats.py",
            '''
            import numpy as np
            __all__ = ["total"]
            def total(x):
                return np.var(x)
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP004"]

    def test_out_of_scope_module_is_quiet(self, tmp_path):
        write(
            tmp_path,
            "src/repro/ml/other.py",
            '''
            __all__ = ["centroid"]
            def centroid(x):
                return x.mean(axis=0)
            ''',
        )
        assert codes(lint(tmp_path)) == []


class TestRep005ExportHygiene:
    def test_fires_on_missing_all(self, tmp_path):
        write(tmp_path, "src/repro/ml/naked.py", "def f():\n    return 1\n")
        assert codes(lint(tmp_path)) == ["REP005"]

    def test_fires_on_unsorted(self, tmp_path):
        write(
            tmp_path,
            "src/repro/ml/messy.py",
            '''
            __all__ = ["b", "a"]
            a = 1
            b = 2
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP005"]

    def test_fires_on_unresolvable_name(self, tmp_path):
        write(
            tmp_path,
            "src/repro/ml/ghost.py",
            '''
            __all__ = ["phantom"]
            real = 1
            ''',
        )
        found = lint(tmp_path)
        assert codes(found) == ["REP005"]
        assert "phantom" in found[0].message

    def test_fires_on_duplicates_and_non_literal(self, tmp_path):
        write(
            tmp_path,
            "src/repro/ml/dupes.py",
            '''
            __all__ = ["a", "a"]
            a = 1
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP005"]
        write(
            tmp_path,
            "src/repro/ml/computed.py",
            '''
            names = ["a"]
            __all__ = names
            a = 1
            ''',
        )
        assert "REP005" in codes(lint(tmp_path / "src/repro/ml/computed.py"))

    def test_quiet_on_clean_module_and_main(self, tmp_path):
        write(
            tmp_path,
            "src/repro/ml/clean.py",
            '''
            __all__ = ["alpha", "beta"]
            alpha = 1
            def beta():
                return alpha
            ''',
        )
        write(tmp_path, "src/repro/ml/__main__.py", "print('hi')\n")
        assert codes(lint(tmp_path)) == []

    def test_conditional_bindings_resolve(self, tmp_path):
        write(
            tmp_path,
            "src/repro/ml/cond.py",
            '''
            __all__ = ["impl"]
            try:
                import scipy as impl
            except ImportError:
                impl = None
            ''',
        )
        assert codes(lint(tmp_path)) == []


class TestRep006ImportLayering:
    def test_fires_on_absolute_import(self, tmp_path):
        write(
            tmp_path,
            "src/repro/dsp/leaky.py",
            '''
            from repro.experiments import table1
            __all__ = ["table1"]
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP006"]

    def test_fires_on_relative_import(self, tmp_path):
        write(
            tmp_path,
            "src/repro/sim/leaky.py",
            '''
            from ..experiments.configs import stationary_config
            __all__ = ["stationary_config"]
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP006"]

    def test_fires_on_plain_import(self, tmp_path):
        write(
            tmp_path,
            "src/repro/isa/leaky.py",
            '''
            import repro.experiments.table1 as t1
            __all__ = ["t1"]
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP006"]

    def test_quiet_on_substrate_imports(self, tmp_path):
        write(
            tmp_path,
            "src/repro/dsp/fine.py",
            '''
            from ..util.env import env_int
            import numpy as np
            __all__ = ["env_int", "np"]
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_experiments_may_import_substrate(self, tmp_path):
        write(
            tmp_path,
            "src/repro/experiments/runner.py",
            '''
            from ..dsp.cwt import get_cwt
            __all__ = ["get_cwt"]
            ''',
        )
        assert codes(lint(tmp_path)) == []


class TestRep007ExceptionHygiene:
    def test_fires_on_bare_except(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/swallow.py",
            '''
            __all__ = ["read"]
            def read(path):
                try:
                    return open(path).read()
                except:
                    return ""
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP007"]

    def test_fires_on_silent_broad_swallow(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/swallow.py",
            '''
            __all__ = ["read"]
            def read(path):
                try:
                    return open(path).read()
                except Exception:
                    pass
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP007"]

    def test_fires_on_baseexception_in_tuple_with_continue(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/swallow.py",
            '''
            __all__ = ["drain"]
            def drain(items):
                out = []
                for item in items:
                    try:
                        out.append(item())
                    except (ValueError, BaseException):
                        continue
                return out
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP007"]

    def test_quiet_on_specific_exception_swallow(self, tmp_path):
        # Swallowing a *named* exception is a deliberate, reviewable
        # decision; only the broad shapes are flagged.
        write(
            tmp_path,
            "src/repro/power/fine.py",
            '''
            __all__ = ["read"]
            def read(path):
                try:
                    return open(path).read()
                except FileNotFoundError:
                    pass
                return ""
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_quiet_on_handled_broad_except(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/fine.py",
            '''
            __all__ = ["read"]
            def read(path, log):
                try:
                    return open(path).read()
                except Exception as error:
                    log.append(error)
                    raise
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_quiet_in_tests(self, tmp_path):
        write(
            tmp_path,
            "tests/test_something.py",
            '''
            def test_x():
                try:
                    1 / 0
                except:
                    pass
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_waiver_comment_suppresses(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/teardown.py",
            '''
            __all__ = ["stop"]
            def stop(worker):
                try:
                    worker.terminate()
                except Exception:  # replint: disable=REP007 -- teardown must not mask the original failure
                    pass
            ''',
        )
        assert codes(lint(tmp_path)) == []


class TestRep008Printing:
    def test_fires_on_print_in_library(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/noisy.py",
            '''
            __all__ = ["capture"]
            def capture(n):
                print(f"capturing {n} traces")
                return n
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP008"]

    def test_quiet_in_entry_point_module(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/__main__.py",
            '''
            def main():
                print("data row")
                return 0
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_quiet_in_tests(self, tmp_path):
        write(
            tmp_path,
            "tests/test_noise.py",
            '''
            def test_x():
                print("debugging aid")
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_quiet_on_method_named_print(self, tmp_path):
        # Only the builtin is flagged; an attribute call is some other
        # object's API.
        write(
            tmp_path,
            "src/repro/power/printer.py",
            '''
            __all__ = ["render"]
            def render(device):
                device.print("ok")
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_waiver_comment_suppresses(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/contract.py",
            '''
            __all__ = ["show"]
            def show(table):
                print(table)  # replint: disable=REP008 -- stdout is the contract
            ''',
        )
        assert codes(lint(tmp_path)) == []


class TestRep014MetricNames:
    def test_fires_on_fstring_span_name(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/dynamic.py",
            '''
            from repro.obs.trace import span
            __all__ = ["capture"]
            def capture(mode, traces):
                with span(f"capture.{mode}"):
                    return list(traces)
            ''',
        )
        assert "REP014" in codes(lint(tmp_path))

    def test_fires_on_concatenated_counter_name(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/dynamic.py",
            '''
            from repro.obs import trace as _obs
            __all__ = ["hit"]
            def hit(kind):
                _obs.counter("cache_" + kind).inc()
            ''',
        )
        assert "REP014" in codes(lint(tmp_path))

    def test_fires_on_convention_breaking_literal(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/shouty.py",
            '''
            from repro.obs import trace as _obs
            __all__ = ["hit"]
            def hit():
                _obs.counter("CacheHits").inc()
                _obs.gauge("undotted").set(1.0)
            ''',
        )
        assert codes(lint(tmp_path)).count("REP014") == 2

    def test_quiet_on_dotted_literals(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/clean.py",
            '''
            from repro.obs import trace as _obs
            from repro.obs.trace import span
            __all__ = ["capture"]
            def capture(traces):
                with span("capture.class", n=len(traces)):
                    _obs.counter("trace_cache.hits").inc()
                    _obs.gauge("parallel.worker_utilization").set(0.5)
                    _obs.histogram("parallel.task_ms").observe(2.0)
                return traces
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_quiet_in_obs_package_itself(self, tmp_path):
        # The obs helpers forward caller-supplied names by design.
        write(
            tmp_path,
            "src/repro/obs/forwarder.py",
            '''
            __all__ = ["counter"]
            def counter(registry, name):
                return registry.counter(name)
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_quiet_in_tests(self, tmp_path):
        write(
            tmp_path,
            "tests/test_span_names.py",
            '''
            from repro.obs.trace import span
            def test_spans(name):
                with span(f"test.{name}"):
                    pass
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_waiver_for_bounded_name_set(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/staged.py",
            '''
            from repro.obs.trace import span
            __all__ = ["stage"]
            def stage(name, compute):
                with span(f"stage.{name}"):  # replint: disable=REP014 -- stage names are a fixed set
                    return compute()
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_unrelated_calls_untouched(self, tmp_path):
        # Only the five obs factories are name-checked; other APIs that
        # happen to share a method name pass untouched.
        write(
            tmp_path,
            "src/repro/power/other.py",
            '''
            __all__ = ["tally"]
            def tally(collections_counter, items):
                return collections_counter(items)
            ''',
        )
        assert codes(lint(tmp_path)) == []


class TestSuppressions:
    def test_line_suppression_silences_one_code(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/clock.py",
            '''
            import time
            __all__ = ["stamp"]
            def stamp():
                return time.time()  # replint: disable=REP003 -- display only
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_line_suppression_is_code_specific(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/clock.py",
            '''
            import time
            __all__ = ["stamp"]
            def stamp():
                return time.time()  # replint: disable=REP001
            ''',
        )
        # The mismatched waiver does not silence REP003 — and is itself
        # reported as unused (REP013).
        assert sorted(codes(lint(tmp_path))) == ["REP003", "REP013"]

    def test_bare_disable_silences_all(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/clock.py",
            '''
            import time
            __all__ = ["stamp"]
            def stamp():
                return time.time()  # replint: disable
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_file_wide_suppression(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/clock.py",
            '''
            # replint: disable-file=REP003 -- timing harness
            import time
            __all__ = ["a", "b"]
            def a():
                return time.time()
            def b():
                return time.time()
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_cross_file_findings_respect_suppressions(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/rogue.py",
            '''
            from ..util.env import env_int
            __all__ = ["value"]
            value = env_int("REPRO_NOT_DECLARED", 3)  # replint: disable=REP001
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_parse_suppressions_shapes(self):
        sup = parse_suppressions(
            [
                "x = 1  # replint: disable=REP001, REP003",
                "y = 2  # replint: disable",
                "# replint: disable-file=REP004 -- why",
                "z = 3",
            ]
        )
        assert sup.by_line[1] == frozenset({"REP001", "REP003"})
        assert sup.by_line[2] is None
        assert 4 not in sup.by_line
        assert sup.file_wide == frozenset({"REP004"})


class TestIterPythonFiles:
    def test_excludes_caches_and_build_dirs(self, tmp_path):
        from repro.analysis import iter_python_files

        keep = write(tmp_path, "src/repro/ml/real.py", "x = 1\n")
        write(tmp_path, "src/repro/ml/__pycache__/real.cpython-311.py", "")
        write(tmp_path, ".replint-cache/stale.py", "x = 1\n")
        write(tmp_path, "build/lib/repro/ml/real.py", "x = 1\n")
        write(tmp_path, ".git/hooks/hook.py", "x = 1\n")
        write(tmp_path, ".pytest_cache/v/cache.py", "x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert files == [str(keep)]

    def test_order_is_deterministic_and_sorted(self, tmp_path):
        from repro.analysis import iter_python_files

        for name in ("zeta", "alpha", "mid"):
            write(tmp_path, f"src/repro/ml/{name}.py", "x = 1\n")
        write(tmp_path, "src/repro/dsp/other.py", "x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert files == sorted(files)
        assert [Path(f).name for f in files] == [
            "other.py", "alpha.py", "mid.py", "zeta.py",
        ]
        # Passing overlapping roots or explicit files never duplicates.
        again = iter_python_files(
            [str(tmp_path), str(tmp_path / "src/repro/ml/alpha.py")]
        )
        assert again == files


class TestRunnerAndCli:
    def test_parse_error_becomes_rep000(self, tmp_path):
        write(tmp_path, "src/repro/ml/broken.py", "def f(:\n")
        found = lint(tmp_path)
        assert codes(found) == ["REP000"]

    def test_findings_sorted_and_json_renderer(self, tmp_path, capsys):
        write(tmp_path, "src/repro/ml/naked.py", "x = 1\n")
        write(
            tmp_path,
            "src/repro/ml/messy.py",
            '__all__ = ["b", "a"]\na = 1\nb = 2\n',
        )
        rc = main(
            [str(tmp_path), "--format", "json", "--jobs", "1", "--no-cache"]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        found = payload["findings"]
        assert [f["code"] for f in found] == ["REP005", "REP005"]
        assert found == sorted(found, key=lambda f: (f["path"], f["line"]))

    def test_cli_clean_exit_zero(self, tmp_path, capsys):
        write(
            tmp_path,
            "src/repro/ml/clean.py",
            '__all__ = ["a"]\na = 1\n',
        )
        assert main([str(tmp_path), "--jobs", "1", "--no-cache"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_missing_path_exit_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP007", "REP008", "REP009", "REP010", "REP011", "REP012",
            "REP013", "REP014",
        ):
            assert code in out

    def test_check_docs_flags_drift(self, tmp_path, capsys):
        readme = tmp_path / "README.md"
        readme.write_text(
            "# x\n<!-- replint:knob-table -->\nstale\n"
            "<!-- /replint:knob-table -->\n",
            encoding="utf-8",
        )
        rc = main(
            ["--check-docs", "--no-lint", "--readme", str(readme)]
        )
        assert rc == 1
        assert "out of sync" in capsys.readouterr().err

    def test_fix_docs_then_check_passes(self, tmp_path, capsys):
        readme = tmp_path / "README.md"
        readme.write_text(
            "# x\n<!-- replint:knob-table -->\nstale\n"
            "<!-- /replint:knob-table -->\ntail\n",
            encoding="utf-8",
        )
        assert main(["--fix-docs", "--readme", str(readme)]) == 0
        assert (
            main(["--check-docs", "--no-lint", "--readme", str(readme)]) == 0
        )
        text = readme.read_text(encoding="utf-8")
        assert "REPRO_BATCHED_TRAIN" in text
        assert text.endswith("tail\n")


class TestRepoIsClean:
    def test_replint_green_on_the_repo(self):
        # benchmarks joins the roots because REP012 judges knob liveness
        # whole-program and the bench-harness knobs are read there.
        roots = [
            str(REPO / name)
            for name in ("src", "tests", "benchmarks")
            if (REPO / name).is_dir()
        ]
        result = run(roots)
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_every_rule_has_fixture_coverage(self):
        # Meta-check: the classes above plus test_project_rules.py cover
        # each shipped rule code.
        from repro.analysis.core import RULE_REGISTRY

        assert set(RULE_REGISTRY) == {f"REP{n:03d}" for n in range(1, 15)}
