"""Incremental-driver tests: cache reuse, invalidation, warm-run speed,
and the ``--changed-since`` import-graph filter."""

import pickle
import subprocess
import time
from pathlib import Path

from repro.analysis import run
from repro.analysis.cache import ScanCache, changed_files, rules_signature

from .test_replint import write

MODULE_BODY = '''
import numpy as np

__all__ = ["centroid_{i}", "spread_{i}", "window_{i}"]


def centroid_{i}(values):
    return np.sum(values, axis=0, dtype=np.float64) / len(values)


def spread_{i}(values):
    deltas = values - centroid_{i}(values)
    return np.sum(deltas * deltas, axis=0, dtype=np.float64)


def window_{i}(values, lo, hi):
    out = []
    for row in values:
        out.append(row[lo:hi])
    return out
'''


def make_tree(tmp_path: Path, n_files: int) -> Path:
    for i in range(n_files):
        write(tmp_path, f"src/repro/ml/mod_{i:03d}.py", MODULE_BODY.format(i=i))
    return tmp_path


class TestCacheReuse:
    def test_second_run_is_fully_cached_and_identical(self, tmp_path):
        make_tree(tmp_path, 8)
        cache_dir = str(tmp_path / ".replint-cache")
        cold = run([str(tmp_path)], n_jobs=1, cache_dir=cache_dir)
        warm = run([str(tmp_path)], n_jobs=1, cache_dir=cache_dir)
        assert cold.n_cached == 0
        assert warm.n_cached == warm.n_files == cold.n_files
        assert warm.findings == cold.findings

    def test_single_edit_rescans_only_that_file(self, tmp_path):
        make_tree(tmp_path, 8)
        cache_dir = str(tmp_path / ".replint-cache")
        run([str(tmp_path)], n_jobs=1, cache_dir=cache_dir)
        target = tmp_path / "src/repro/ml/mod_003.py"
        target.write_text(
            MODULE_BODY.format(i=3) + "\n\ndef extra_3():\n    print('x')\n",
            encoding="utf-8",
        )
        result = run([str(tmp_path)], n_jobs=1, cache_dir=cache_dir)
        assert result.n_cached == result.n_files - 1
        # The edit's new finding is visible — cached blobs never mask
        # fresh content.
        assert [f.code for f in result.findings] == ["REP008"]
        assert all(f.path.endswith("mod_003.py") for f in result.findings)

    def test_corrupt_cache_degrades_to_cold_scan(self, tmp_path):
        make_tree(tmp_path, 4)
        cache_dir = tmp_path / ".replint-cache"
        clean = run([str(tmp_path)], n_jobs=1, cache_dir=str(cache_dir))
        (cache_dir / "scan.pkl").write_bytes(b"not a pickle")
        result = run([str(tmp_path)], n_jobs=1, cache_dir=str(cache_dir))
        assert result.n_cached == 0
        assert result.findings == clean.findings

    def test_rules_signature_keys_the_cache(self, tmp_path):
        make_tree(tmp_path, 4)
        cache_dir = tmp_path / ".replint-cache"
        run([str(tmp_path)], n_jobs=1, cache_dir=str(cache_dir))
        # Rewrite the stored signature: everything must re-scan, exactly
        # as if a rule module had been edited.
        path = cache_dir / "scan.pkl"
        payload = pickle.loads(path.read_bytes())
        assert payload["signature"] == rules_signature()
        payload["signature"] = "something else"
        path.write_bytes(pickle.dumps(payload))
        result = run([str(tmp_path)], n_jobs=1, cache_dir=str(cache_dir))
        assert result.n_cached == 0

    def test_cache_dir_is_never_linted(self, tmp_path):
        make_tree(tmp_path, 3)
        cache_dir = tmp_path / "src" / ".replint-cache"
        # A stray .py inside the cache dir must not be walked.
        write(tmp_path, "src/.replint-cache/junk.py", "import os\n")
        result = run([str(tmp_path)], n_jobs=1, cache_dir=str(cache_dir))
        assert result.n_files == 3
        assert result.findings == []


class TestWarmRunSpeed:
    def test_single_edit_relint_is_under_a_fifth_of_cold(self, tmp_path):
        """A warm single-file edit re-lints in <20% of a cold full-tree
        run (the ISSUE's acceptance bar for the incremental driver)."""
        make_tree(tmp_path, 60)
        cache_dir = str(tmp_path / ".replint-cache")

        start = time.perf_counter()
        cold = run([str(tmp_path)], n_jobs=1, cache_dir=cache_dir)
        cold_s = time.perf_counter() - start
        assert cold.n_cached == 0

        target = tmp_path / "src/repro/ml/mod_030.py"
        target.write_text(
            MODULE_BODY.format(i=30) + "\n\nEXTRA_30 = 1\n", encoding="utf-8"
        )
        start = time.perf_counter()
        warm = run([str(tmp_path)], n_jobs=1, cache_dir=cache_dir)
        warm_s = time.perf_counter() - start

        assert warm.n_cached == warm.n_files - 1
        assert warm_s < 0.20 * cold_s, (
            f"warm re-lint took {warm_s:.3f}s vs cold {cold_s:.3f}s "
            f"({warm_s / cold_s:.0%}); the cache is not earning its keep"
        )


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=repo,
        check=True,
        capture_output=True,
    )


class TestChangedSince:
    def _seed_repo(self, tmp_path: Path) -> Path:
        write(
            tmp_path,
            "src/repro/ml/base.py",
            '''
            __all__ = ["scale"]
            def scale(x):
                return 2 * x
            ''',
        )
        write(
            tmp_path,
            "src/repro/ml/user.py",
            '''
            from .base import scale
            __all__ = ["apply"]
            def apply(x):
                print(x)
                return scale(x)
            ''',
        )
        write(
            tmp_path,
            "src/repro/ml/loner.py",
            '''
            __all__ = ["solo"]
            def solo(x):
                print(x)
                return x
            ''',
        )
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-q", "-m", "seed")
        return tmp_path

    def test_reports_changed_files_and_their_dependents(
        self, tmp_path, monkeypatch
    ):
        repo = self._seed_repo(tmp_path)
        monkeypatch.chdir(repo)
        # Edit base.py only.  user.py imports it, so user.py's findings
        # are back in scope; loner.py's identical finding is not.
        (repo / "src/repro/ml/base.py").write_text(
            '__all__ = ["scale"]\ndef scale(x):\n    return 3 * x\n',
            encoding="utf-8",
        )
        result = run(["src"], n_jobs=1, changed_since="HEAD")
        assert result.n_reported_files == 2
        assert [f.path for f in result.findings] == ["src/repro/ml/user.py"]
        assert [f.code for f in result.findings] == ["REP008"]

    def test_full_run_still_sees_everything(self, tmp_path, monkeypatch):
        repo = self._seed_repo(tmp_path)
        monkeypatch.chdir(repo)
        result = run(["src"], n_jobs=1)
        assert sorted({f.path for f in result.findings}) == [
            "src/repro/ml/loner.py",
            "src/repro/ml/user.py",
        ]

    def test_untracked_files_count_as_changed(self, tmp_path, monkeypatch):
        repo = self._seed_repo(tmp_path)
        monkeypatch.chdir(repo)
        write(
            repo,
            "src/repro/ml/fresh.py",
            '''
            __all__ = ["loud"]
            def loud(x):
                print(x)
            ''',
        )
        assert changed_files("HEAD") == ["src/repro/ml/fresh.py"]
        result = run(["src"], n_jobs=1, changed_since="HEAD")
        assert [f.path for f in result.findings] == ["src/repro/ml/fresh.py"]

    def test_unresolvable_ref_raises_value_error(self, tmp_path, monkeypatch):
        repo = self._seed_repo(tmp_path)
        monkeypatch.chdir(repo)
        try:
            run(["src"], n_jobs=1, changed_since="no-such-ref")
        except ValueError as exc:
            assert "no-such-ref" in str(exc) or "git" in str(exc)
        else:
            raise AssertionError("expected ValueError for a bad ref")
