"""CLI contract tests: exit codes, the JSON report schema (golden
file), ``--list-rules`` coverage, and the baseline workflow.

The golden file pins the *entire* JSON document for a fixed fixture
tree — schema, field order (keys are sorted), rule descriptions, and
findings.  A diff here is an intentional contract change: regenerate
with ``PYTHONPATH=src python -m tests.analysis.test_cli_contract`` and
review the diff.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main

from .test_replint import write

GOLDEN = Path(__file__).parent / "golden" / "replint_report.json"

#: The fixture tree behind the golden report: one REP005 finding.
FIXTURE = {
    "src/repro/ml/messy.py": '__all__ = ["b", "a"]\na = 1\nb = 2\n',
    "src/repro/ml/clean.py": '__all__ = ["alpha"]\nalpha = 1\n',
}


def _seed(tmp_path: Path) -> None:
    for rel, text in FIXTURE.items():
        write(tmp_path, rel, text)


class TestExitCodes:
    def test_zero_on_clean_tree(self, tmp_path, capsys):
        write(tmp_path, "src/repro/ml/clean.py", '__all__ = ["a"]\na = 1\n')
        assert main([str(tmp_path), "--jobs", "1", "--no-cache"]) == 0

    def test_one_on_findings(self, tmp_path, capsys):
        _seed(tmp_path)
        assert main([str(tmp_path), "--jobs", "1", "--no-cache"]) == 1

    def test_two_on_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope"), "--no-cache"]) == 2

    def test_two_on_bad_changed_since_ref(self, tmp_path, monkeypatch, capsys):
        _seed(tmp_path)
        monkeypatch.chdir(tmp_path)  # not a git repo at all
        rc = main(["src", "--jobs", "1", "--no-cache",
                   "--changed-since", "origin/main"])
        assert rc == 2
        assert "git" in capsys.readouterr().err

    def test_two_on_malformed_baseline(self, tmp_path, capsys):
        _seed(tmp_path)
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json", encoding="utf-8")
        rc = main([str(tmp_path), "--jobs", "1", "--no-cache",
                   "--baseline", str(bad)])
        assert rc == 2

    def test_two_on_update_baseline_without_baseline(self, capsys):
        assert main(["--update-baseline"]) == 2

    def test_two_when_no_roots_exist(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # empty dir: no src/tests/benchmarks
        assert main(["--no-cache"]) == 2


class TestJsonGolden:
    def test_report_matches_golden(self, tmp_path, monkeypatch, capsys):
        _seed(tmp_path)
        monkeypatch.chdir(tmp_path)  # relative paths → deterministic doc
        rc = main(["src", "--format", "json", "--jobs", "1", "--no-cache"])
        assert rc == 1
        produced = json.loads(capsys.readouterr().out)
        expected = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert produced == expected

    def test_golden_schema_fields(self):
        payload = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert sorted(payload) == [
            "baselined", "cache", "files_scanned", "findings", "rules",
            "stale_baseline", "version",
        ]
        assert payload["version"] == 2
        for row in payload["findings"]:
            assert sorted(row) == ["code", "col", "line", "message", "path"]


class TestListRules:
    def test_all_fourteen_codes_listed(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for n in range(1, 15):
            assert f"REP{n:03d}" in out
        for name in ("dtype-flow", "parallel-safety", "span-coverage",
                     "knob-liveness", "unused-suppression"):
            assert name in out


class TestBaselineWorkflow:
    def test_ratchet_cycle(self, tmp_path, monkeypatch, capsys):
        _seed(tmp_path)
        monkeypatch.chdir(tmp_path)
        baseline = "replint-baseline.json"

        # 1. Findings exist; accept them into the baseline.
        rc = main(["src", "--jobs", "1", "--no-cache",
                   "--baseline", baseline, "--update-baseline"])
        assert rc == 0
        entries = json.loads(Path(baseline).read_text())["entries"]
        assert len(entries) == 1 and entries[0]["code"] == "REP005"

        # 2. With the baseline, the same tree is green and the finding
        #    is reported as baselined, not failing.
        rc = main(["src", "--jobs", "1", "--no-cache",
                   "--baseline", baseline])
        assert rc == 0
        assert "1 baselined" in capsys.readouterr().out

        # 3. Fix the finding: the baseline entry is now stale and the
        #    run fails until the file is ratcheted down.
        write(tmp_path, "src/repro/ml/messy.py",
              '__all__ = ["a", "b"]\na = 1\nb = 2\n')
        rc = main(["src", "--jobs", "1", "--no-cache",
                   "--baseline", baseline])
        assert rc == 1
        assert "STALE" in capsys.readouterr().out

        # 4. Ratchet: the baseline empties and the tree is clean.
        rc = main(["src", "--jobs", "1", "--no-cache",
                   "--baseline", baseline, "--update-baseline"])
        assert rc == 0
        assert json.loads(Path(baseline).read_text())["entries"] == []
        assert main(["src", "--jobs", "1", "--no-cache",
                     "--baseline", baseline]) == 0

    def test_justifications_survive_update(self, tmp_path, monkeypatch,
                                           capsys):
        _seed(tmp_path)
        monkeypatch.chdir(tmp_path)
        baseline = "replint-baseline.json"
        main(["src", "--jobs", "1", "--no-cache",
              "--baseline", baseline, "--update-baseline"])
        payload = json.loads(Path(baseline).read_text())
        payload["entries"][0]["justification"] = "legacy export order"
        Path(baseline).write_text(json.dumps(payload), encoding="utf-8")
        # Another finding joins; the old entry keeps its justification.
        write(tmp_path, "src/repro/ml/worse.py", "def f():\n    return 1\n")
        main(["src", "--jobs", "1", "--no-cache",
              "--baseline", baseline, "--update-baseline"])
        entries = json.loads(Path(baseline).read_text())["entries"]
        just = {e["path"]: e["justification"] for e in entries}
        assert just["src/repro/ml/messy.py"] == "legacy export order"
        assert just["src/repro/ml/worse.py"].startswith("TODO")


if __name__ == "__main__":  # pragma: no cover - golden regeneration helper
    import os
    import subprocess
    import sys
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        for rel, text in FIXTURE.items():
            path = Path(tmp) / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src",
             "--format", "json", "--jobs", "1", "--no-cache"],
            cwd=tmp,
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(Path(__file__).parents[2] / "src")},  # replint: disable=REP001 -- regen helper passes the env through to a subprocess, no knob is read
        )
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(proc.stdout, encoding="utf-8")
    print(f"wrote {GOLDEN}")
