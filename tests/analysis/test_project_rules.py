"""Fixture tests for the whole-program rules (REP009–REP012) and the
unused-suppression report (REP013).

Each rule gets a firing fixture, a compliant twin, and a *cross-module*
case — a violation (or absolution) only visible through the project
model's import graph / call-def index, never from any single file.

Fixture trees avoid incidental findings from the per-file rules
(``__all__`` present and sorted, no wall-clock reads, ...) so the
assertions can usually compare exact code lists.  Knob fixtures reuse
*real* registry names because REP001 checks every ``REPRO_*`` literal
against the imported registry regardless of the tree under lint.
"""

from pathlib import Path
from textwrap import dedent

from repro.analysis import run

from .test_replint import codes, lint, write


def _write_cwt_sink(tmp_path: Path) -> None:
    write(
        tmp_path,
        "src/repro/dsp/cwt.py",
        '''
        __all__ = ["get_cwt"]
        def get_cwt(n_samples):
            return n_samples
        ''',
    )


def _write_pool(tmp_path: Path) -> None:
    write(
        tmp_path,
        "src/repro/util/parallel.py",
        '''
        __all__ = ["parallel_map"]
        def parallel_map(fn, items, n_jobs=None):
            return [fn(item) for item in items]
        ''',
    )


def _write_obs(tmp_path: Path) -> None:
    write(
        tmp_path,
        "src/repro/obs/__init__.py",
        '''
        from .trace import span, traced
        __all__ = ["span", "traced"]
        ''',
    )
    write(
        tmp_path,
        "src/repro/obs/trace.py",
        '''
        import contextlib
        __all__ = ["span", "traced"]
        @contextlib.contextmanager
        def span(name, **fields):
            yield
        def traced(name):
            def wrap(fn):
                return fn
            return wrap
        ''',
    )


class TestRep009DtypeFlow:
    def test_fires_on_unpinned_asarray_in_sink_importer(self, tmp_path):
        _write_cwt_sink(tmp_path)
        write(
            tmp_path,
            "src/repro/features/prep.py",
            '''
            import numpy as np
            from ..dsp.cwt import get_cwt
            __all__ = ["prep"]
            def prep(traces):
                arr = np.asarray(traces)
                return get_cwt(arr)
            ''',
        )
        found = lint(tmp_path)
        assert codes(found) == ["REP009"]
        assert "np.asarray(traces)" in found[0].message
        assert "imports repro.dsp.cwt" in found[0].message

    def test_quiet_with_pinned_dtype(self, tmp_path):
        _write_cwt_sink(tmp_path)
        write(
            tmp_path,
            "src/repro/features/prep.py",
            '''
            import numpy as np
            from ..dsp.cwt import get_cwt
            __all__ = ["prep"]
            def prep(traces):
                arr = np.asarray(traces, dtype=np.float32)
                return get_cwt(arr)
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_quiet_with_f64_accumulation_in_scope(self, tmp_path):
        _write_cwt_sink(tmp_path)
        write(
            tmp_path,
            "src/repro/features/prep.py",
            '''
            import numpy as np
            from ..dsp.cwt import get_cwt
            __all__ = ["prep"]
            def prep(traces):
                arr = np.asarray(traces)
                total = np.sum(arr, axis=0, dtype=np.float64)
                return get_cwt(total)
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_quiet_off_the_gemm_path(self, tmp_path):
        _write_cwt_sink(tmp_path)
        write(
            tmp_path,
            "src/repro/power/loader.py",
            '''
            import numpy as np
            __all__ = ["load"]
            def load(traces):
                return np.asarray(traces)
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_cross_module_helper_called_from_on_path_module(self, tmp_path):
        # helper.py never imports the sink — only the call/def index
        # connects it to the GEMM path, via prep.py.
        _write_cwt_sink(tmp_path)
        write(
            tmp_path,
            "src/repro/features/helper.py",
            '''
            import numpy as np
            __all__ = ["gather"]
            def gather(traces):
                return np.asarray(traces)
            ''',
        )
        write(
            tmp_path,
            "src/repro/features/prep.py",
            '''
            from ..dsp.cwt import get_cwt
            from .helper import gather
            __all__ = ["prep"]
            def prep(traces):
                return get_cwt(gather(traces))
            ''',
        )
        found = lint(tmp_path)
        assert codes(found) == ["REP009"]
        assert found[0].path.endswith("helper.py")
        assert "called from repro.features.prep" in found[0].message

    def test_suppression_with_justification_is_honored(self, tmp_path):
        _write_cwt_sink(tmp_path)
        write(
            tmp_path,
            "src/repro/features/prep.py",
            '''
            import numpy as np
            from ..dsp.cwt import get_cwt
            __all__ = ["prep"]
            def prep(traces):
                arr = np.asarray(traces)  # replint: disable=REP009 -- shape probe
                return get_cwt(arr)
            ''',
        )
        assert codes(lint(tmp_path)) == []


class TestRep010ParallelSafety:
    def test_fires_on_literal_lambda(self, tmp_path):
        _write_pool(tmp_path)
        write(
            tmp_path,
            "src/repro/power/runner.py",
            '''
            from ..util.parallel import parallel_map
            __all__ = ["go"]
            def go(items):
                return parallel_map(lambda x: x, items)
            ''',
        )
        found = lint(tmp_path)
        assert codes(found) == ["REP010"]
        assert "lambda" in found[0].message

    def test_fires_on_nested_function(self, tmp_path):
        _write_pool(tmp_path)
        write(
            tmp_path,
            "src/repro/power/runner.py",
            '''
            from ..util.parallel import parallel_map
            __all__ = ["go"]
            def go(items, scale):
                def work(x):
                    return x * scale
                return parallel_map(work, items)
            ''',
        )
        found = lint(tmp_path)
        assert codes(found) == ["REP010"]
        assert "closure" in found[0].message

    def test_fires_on_local_lambda_binding(self, tmp_path):
        _write_pool(tmp_path)
        write(
            tmp_path,
            "src/repro/power/runner.py",
            '''
            from ..util.parallel import parallel_map
            __all__ = ["go"]
            def go(items):
                work = lambda x: x
                return parallel_map(work, items)
            ''',
        )
        assert codes(lint(tmp_path)) == ["REP010"]

    def test_cross_module_imported_lambda(self, tmp_path):
        # The lambda lives in ops.py; the call site in runner.py looks
        # like an ordinary imported function — only symbol resolution
        # through the import graph exposes it.
        _write_pool(tmp_path)
        write(
            tmp_path,
            "src/repro/power/ops.py",
            '''
            __all__ = ["double"]
            double = lambda x: 2 * x
            ''',
        )
        write(
            tmp_path,
            "src/repro/power/runner.py",
            '''
            from ..util.parallel import parallel_map
            from .ops import double
            __all__ = ["go"]
            def go(items):
                return parallel_map(double, items)
            ''',
        )
        found = lint(tmp_path)
        assert codes(found) == ["REP010"]
        assert found[0].path.endswith("runner.py")
        assert "defined in repro.power.ops" in found[0].message

    def test_quiet_on_module_level_function(self, tmp_path):
        _write_pool(tmp_path)
        write(
            tmp_path,
            "src/repro/power/ops.py",
            '''
            __all__ = ["double"]
            def double(x):
                return 2 * x
            ''',
        )
        write(
            tmp_path,
            "src/repro/power/runner.py",
            '''
            from ..util.parallel import parallel_map
            from .ops import double
            __all__ = ["go"]
            def go(items):
                return parallel_map(double, items)
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_quiet_on_task_object_instance(self, tmp_path):
        _write_pool(tmp_path)
        write(
            tmp_path,
            "src/repro/power/runner.py",
            '''
            from ..util.parallel import parallel_map
            __all__ = ["Task", "go"]
            class Task:
                def __init__(self, scale):
                    self.scale = scale
                def __call__(self, x):
                    return x * self.scale
            def go(items, scale):
                return parallel_map(Task(scale), items)
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_tests_are_exempt(self, tmp_path):
        _write_pool(tmp_path)
        write(
            tmp_path,
            "tests/test_pool.py",
            '''
            from repro.util.parallel import parallel_map
            def test_serial_degrade():
                assert parallel_map(lambda x: x, [1]) == [1]
            ''',
        )
        assert codes(lint(tmp_path)) == []


class TestRep011SpanCoverage:
    def test_fires_on_uninstrumented_trace_loop(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/capture.py",
            '''
            __all__ = ["capture_all"]
            def capture_all(traces):
                out = []
                for trace in traces:
                    out.append(trace)
                return out
            ''',
        )
        found = lint(tmp_path)
        assert codes(found) == ["REP011"]
        assert "capture_all" in found[0].message

    def test_quiet_with_direct_span(self, tmp_path):
        _write_obs(tmp_path)
        write(
            tmp_path,
            "src/repro/power/capture.py",
            '''
            from ..obs import span
            __all__ = ["capture_all"]
            def capture_all(traces):
                out = []
                with span("power.capture", n=len(traces)):
                    for trace in traces:
                        out.append(trace)
                return out
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_quiet_with_traced_decorator(self, tmp_path):
        _write_obs(tmp_path)
        write(
            tmp_path,
            "src/repro/power/capture.py",
            '''
            from ..obs import traced
            __all__ = ["capture_all"]
            @traced("power.capture")
            def capture_all(traces):
                return [trace for trace in traces]
            ''',
        )
        # Comprehensions are not ``for`` statements; seed a real loop.
        write(
            tmp_path,
            "src/repro/power/capture.py",
            '''
            from ..obs import traced
            __all__ = ["capture_all"]
            @traced("power.capture")
            def capture_all(traces):
                out = []
                for trace in traces:
                    out.append(trace)
                return out
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_quiet_on_private_and_out_of_scope_functions(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/capture.py",
            '''
            __all__ = ["API"]
            API = "v1"
            def _drain(traces):
                for trace in traces:
                    pass
            ''',
        )
        write(
            tmp_path,
            "src/repro/ml/train.py",
            '''
            __all__ = ["fit"]
            def fit(traces):
                for trace in traces:
                    pass
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_cross_module_loop_hidden_in_private_helper(self, tmp_path):
        # run_all looks loop-free; the trace loop lives in another
        # module's private helper.  Only the call/def index connects
        # them, and the finding lands on the public entry point.
        write(
            tmp_path,
            "src/repro/power/_scan.py",
            '''
            __all__ = []
            def _iterate(traces):
                for trace in traces:
                    pass
            ''',
        )
        write(
            tmp_path,
            "src/repro/experiments/runit.py",
            '''
            from ..power._scan import _iterate
            __all__ = ["run_all"]
            def run_all(traces):
                return _iterate(traces)
            ''',
        )
        found = lint(tmp_path)
        assert codes(found) == ["REP011"]
        assert found[0].path.endswith("runit.py")
        assert "in repro.power._scan._iterate" in found[0].message

    def test_cross_module_span_in_callee_absolves(self, tmp_path):
        _write_obs(tmp_path)
        write(
            tmp_path,
            "src/repro/power/_scan.py",
            '''
            from ..obs import span
            __all__ = []
            def _iterate(traces):
                with span("power.scan", n=len(traces)):
                    for trace in traces:
                        pass
            ''',
        )
        write(
            tmp_path,
            "src/repro/experiments/runit.py",
            '''
            from ..power._scan import _iterate
            __all__ = ["run_all"]
            def run_all(traces):
                return _iterate(traces)
            ''',
        )
        assert codes(lint(tmp_path)) == []


class TestRep012KnobLiveness:
    REGISTRY = '''
    __all__ = ["KNOBS", "Knob"]
    class Knob:
        def __init__(self, name, default):
            self.name = name
            self.default = default
    KNOBS = {
        "REPRO_FFT_BACKEND": Knob("REPRO_FFT_BACKEND", "auto"),
        "REPRO_N_JOBS": Knob("REPRO_N_JOBS", 0),
    }
    '''

    READER = '''
    __all__ = ["backend"]
    def backend(get):
        return get("REPRO_FFT_BACKEND", "auto")
    '''

    def test_fires_on_dead_knob(self, tmp_path):
        # REPRO_N_JOBS is registered but nothing reads it anywhere.
        write(tmp_path, "src/repro/util/knobs.py", self.REGISTRY)
        write(tmp_path, "src/repro/power/reader.py", self.READER)
        found = lint(tmp_path)
        assert codes(found) == ["REP012"]
        assert found[0].path.endswith("knobs.py")
        assert "REPRO_N_JOBS" in found[0].message
        assert "never read" in found[0].message

    def test_fires_on_phantom_read(self, tmp_path):
        write(tmp_path, "src/repro/util/knobs.py", self.REGISTRY)
        write(
            tmp_path,
            "src/repro/power/reader.py",
            '''
            __all__ = ["backend", "rate"]
            def backend(get):
                return get("REPRO_FFT_BACKEND", "auto")
            def rate(get):
                return get("REPRO_FAULT_RATE", 0.0)
            ''',
        )
        found = [f for f in lint(tmp_path) if f.code == "REP012"]
        by_message = sorted(f.message for f in found)
        assert any("REPRO_FAULT_RATE" in m and "no Knob" in m
                   for m in by_message)
        # REPRO_N_JOBS is still dead in this tree.
        assert any("REPRO_N_JOBS" in m for m in by_message)
        assert len(found) == 2

    def test_quiet_when_registry_and_reads_agree(self, tmp_path):
        write(
            tmp_path,
            "src/repro/util/knobs.py",
            '''
            __all__ = ["KNOBS", "Knob"]
            class Knob:
                def __init__(self, name, default):
                    self.name = name
                    self.default = default
            KNOBS = {"REPRO_FFT_BACKEND": Knob("REPRO_FFT_BACKEND", "auto")}
            ''',
        )
        write(tmp_path, "src/repro/power/reader.py", self.READER)
        assert codes(lint(tmp_path)) == []

    def test_silent_without_a_registry_module(self, tmp_path):
        # A partial lint (fixture tree, single file) cannot judge
        # liveness; the rule stays out of the way.
        write(tmp_path, "src/repro/power/reader.py", self.READER)
        assert codes(lint(tmp_path)) == []

    def test_test_namespace_is_exempt(self, tmp_path):
        write(tmp_path, "src/repro/util/knobs.py", self.REGISTRY)
        write(
            tmp_path,
            "src/repro/power/reader.py",
            '''
            __all__ = ["backend", "fixture"]
            def backend(get):
                return get("REPRO_FFT_BACKEND", "auto")
            def fixture(get):
                return get("REPRO_TEST_WHATEVER", 1)
            ''',
        )
        found = [f for f in lint(tmp_path) if f.code == "REP012"]
        # Only the dead REPRO_N_JOBS — the REPRO_TEST_* read is not a
        # phantom.
        assert len(found) == 1
        assert "REPRO_N_JOBS" in found[0].message


class TestRep013UnusedSuppressions:
    def test_fires_on_unused_line_suppression(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/fine.py",
            '''
            __all__ = ["add"]
            def add(a, b):
                return a + b  # replint: disable=REP003 -- stale waiver
            ''',
        )
        found = lint(tmp_path)
        assert codes(found) == ["REP013"]
        assert "REP003" in found[0].message

    def test_fires_on_unused_file_wide_suppression(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/fine.py",
            '''
            # replint: disable-file=REP008 -- nothing prints here anymore
            __all__ = ["add"]
            def add(a, b):
                return a + b
            ''',
        )
        found = lint(tmp_path)
        assert codes(found) == ["REP013"]
        assert "disable-file=REP008" in found[0].message

    def test_used_suppression_is_not_reported(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/clock.py",
            '''
            import time
            __all__ = ["stamp"]
            def stamp():
                return time.time()  # replint: disable=REP003 -- display
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_naming_rep013_opts_out(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/fine.py",
            '''
            __all__ = ["add"]
            def add(a, b):
                return a + b  # replint: disable=REP013 -- keep this marker
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_markers_in_strings_are_inert(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/docs.py",
            '''
            __all__ = ["HOWTO"]
            HOWTO = "silence a rule with  # replint: disable=REP003"
            ''',
        )
        assert codes(lint(tmp_path)) == []

    def test_warning_can_be_disabled(self, tmp_path):
        write(
            tmp_path,
            "src/repro/power/fine.py",
            '''
            __all__ = ["add"]
            def add(a, b):
                return a + b  # replint: disable=REP003 -- stale
            ''',
        )
        result = run([str(tmp_path)], n_jobs=1,
                     warn_unused_suppressions=False)
        assert result.findings == []
