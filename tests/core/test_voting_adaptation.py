"""Majority-voting classifier and shift-report tests."""

import numpy as np
import pytest

from repro.core import PairwiseVotingClassifier, ShiftReport
from repro.features import FeatureConfig
from repro.ml import QDA
from repro.power import Acquisition


@pytest.fixture(scope="module")
def g1_subset():
    acq = Acquisition(seed=21)
    full = acq.capture_instruction_set(["ADD", "EOR", "OR", "AND"], 80, 4)
    rng = np.random.default_rng(0)
    return full.split_random(0.75, rng)


class TestVoting:
    def test_fit_predict(self, g1_subset):
        train, test = g1_subset
        voting = PairwiseVotingClassifier(
            FeatureConfig(kl_threshold="auto:0.9", n_components=3),
            classifier_factory=QDA,
            n_variables=3,
        )
        voting.fit(train)
        assert voting.n_binary_classifiers == 6
        assert voting.score(test) > 0.8

    def test_few_variables_still_accurate(self, g1_subset):
        """The headline property of §5.4: high SR at tiny budgets."""
        train, test = g1_subset
        voting = PairwiseVotingClassifier(
            FeatureConfig(kl_threshold="auto:0.9"),
            classifier_factory=QDA,
            n_variables=2,
        )
        voting.fit(train)
        assert voting.score(test) > 0.7

    def test_predictions_in_label_space(self, g1_subset):
        train, test = g1_subset
        voting = PairwiseVotingClassifier(n_variables=3)
        voting.fit(train)
        assert set(voting.predict(test.traces[:20])) <= {0, 1, 2, 3}

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PairwiseVotingClassifier().predict(np.zeros((2, 315)))

    def test_vectorized_predict_matches_reference(self, g1_subset):
        train, test = g1_subset
        voting = PairwiseVotingClassifier(
            FeatureConfig(kl_threshold="auto:0.9", n_components=3),
            classifier_factory=QDA,
            n_variables=3,
        )
        voting.fit(train)
        np.testing.assert_array_equal(
            voting.predict(test.traces),
            voting.predict_reference(test.traces),
        )

    def test_batched_fit_matches_reference_fit(self, g1_subset, monkeypatch):
        """REPRO_BATCHED_TRAIN=0 selects identical per-pair points."""
        train, test = g1_subset
        config = FeatureConfig(kl_threshold="auto:0.9", n_components=3)
        fast = PairwiseVotingClassifier(
            config, classifier_factory=QDA, n_variables=3
        )
        fast.fit(train)
        monkeypatch.setenv("REPRO_BATCHED_TRAIN", "0")
        slow = PairwiseVotingClassifier(
            config, classifier_factory=QDA, n_variables=3
        )
        slow.fit(train)
        assert fast._points == slow._points
        np.testing.assert_array_equal(
            fast.predict(test.traces), slow.predict(test.traces)
        )

    def test_points_per_pair_default(self):
        voting = PairwiseVotingClassifier(n_variables=3)
        assert voting.points_per_pair == 10
        voting12 = PairwiseVotingClassifier(n_variables=12)
        assert voting12.points_per_pair == 12


class TestShiftReport:
    def test_no_shift(self):
        rng = np.random.default_rng(0)
        train = rng.normal(0, 1, (500, 4))
        test = rng.normal(0, 1, (500, 4))
        report = ShiftReport.between(train, test)
        assert report.mean_shift < 0.2
        assert not report.is_shifted

    def test_detects_mean_shift(self):
        rng = np.random.default_rng(1)
        train = rng.normal(0, 1, (500, 4))
        test = rng.normal(2, 1, (500, 4))
        report = ShiftReport.between(train, test)
        assert report.mean_shift > 1.5
        assert report.is_shifted

    def test_variance_ratio(self):
        rng = np.random.default_rng(2)
        train = rng.normal(0, 1, (500, 3))
        test = rng.normal(0, 3, (500, 3))
        report = ShiftReport.between(train, test)
        assert report.variance_ratio > 5.0
