"""Integration tests of the hierarchical disassembler on simulated traces.

These are the slowest unit tests; they run at tiny trace budgets and only
check behavioural properties, not headline SRs (benchmarks do that).
"""

import numpy as np
import pytest

from repro.core import SideChannelDisassembler, csa_config
from repro.features import FeatureConfig
from repro.ml import QDA
from repro.power import Acquisition

FAST = FeatureConfig(kl_threshold="auto:0.9", top_k=5, n_components=10)


@pytest.fixture(scope="module")
def small_world():
    """Two-group, four-class world with register levels."""
    acq = Acquisition(seed=11)
    from repro.power.acquisition import random_instance
    from repro.power.dataset import TraceSet

    group_parts = []
    for code, (name, pool) in enumerate(
        (("G1", ["ADD", "EOR"]), ("G5", ["LDS", "ST_X"]))
    ):
        def sampler(rng, addr, _pool=pool):
            return random_instance(str(rng.choice(_pool)), rng, word_address=addr)

        w, p = acq.capture_class(
            pool[0], 60, 3, label_override=name, target_sampler=sampler
        )
        group_parts.append((w, code, p))
    group_set = TraceSet(
        traces=np.concatenate([w for w, _, _ in group_parts]),
        labels=np.concatenate(
            [np.full(len(w), c) for w, c, _ in group_parts]
        ),
        label_names=("G1", "G5"),
        program_ids=np.concatenate([p for _, _, p in group_parts]),
    )
    g1 = acq.capture_instruction_set(["ADD", "EOR"], 60, 3)
    g5 = acq.capture_instruction_set(["LDS", "ST_X"], 60, 3)
    rd = acq.capture_register_set("Rd", (2, 20), 60, 3)
    rr = acq.capture_register_set("Rr", (2, 20), 60, 3)
    dis = SideChannelDisassembler(FAST, classifier_factory=QDA)
    dis.fit_group_level(group_set)
    dis.fit_instruction_level(1, g1)
    dis.fit_instruction_level(5, g5)
    dis.fit_register_level("Rd", rd)
    dis.fit_register_level("Rr", rr)
    return acq, dis, g1, g5


class TestHierarchy:
    def test_group_prediction_values(self, small_world):
        acq, dis, g1, g5 = small_world
        groups = dis.predict_groups(g1.traces[:20])
        assert set(groups) <= {1, 5}

    def test_instruction_keys_within_group(self, small_world):
        acq, dis, g1, g5 = small_world
        keys = dis.predict_instructions(g1.traces[:20])
        assert set(keys) <= {"ADD", "EOR", "LDS", "ST_X"}

    def test_reasonable_accuracy(self, small_world):
        acq, dis, g1, g5 = small_world
        keys = dis.predict_instructions(g5.traces)
        truth = [g5.label_names[c] for c in g5.labels]
        accuracy = np.mean([k == t for k, t in zip(keys, truth)])
        assert accuracy > 0.8

    def test_disassemble_output_structure(self, small_world):
        acq, dis, g1, g5 = small_world
        out = dis.disassemble(g1.traces[:10])
        assert len(out) == 10
        for instr in out:
            assert instr.group in (1, 5)
            if instr.key in ("ADD", "EOR"):
                assert instr.rd is not None and instr.rr is not None
            if instr.key == "LDS":
                assert instr.rr is None  # single register operand

    def test_register_prediction_values(self, small_world):
        acq, dis, g1, g5 = small_world
        rd = dis.predict_register("Rd", g1.traces[:10])
        assert set(rd) <= {2, 20}

    def test_missing_level_reports_group(self, small_world):
        acq, dis, g1, g5 = small_world
        fresh = SideChannelDisassembler(FAST, classifier_factory=QDA)
        fresh.group_model = dis.group_model
        keys = fresh.predict_instructions(g1.traces[:5])
        assert all(k.endswith("?") for k in keys)

    def test_unfitted_errors(self):
        dis = SideChannelDisassembler(FAST)
        with pytest.raises(RuntimeError):
            dis.predict_groups(np.zeros((2, 315)))
        with pytest.raises(RuntimeError):
            dis.predict_register("Rd", np.zeros((2, 315)))

    def test_register_role_validated(self):
        dis = SideChannelDisassembler(FAST)
        with pytest.raises(ValueError):
            dis.fit_register_level("Rq", None)

    def test_classifier_counts(self, small_world):
        acq, dis, g1, g5 = small_world
        assert dis.n_binary_classifiers_hierarchical == 1 + 1  # C(2,2)+C(2,2)
        assert dis.n_binary_classifiers_flat == 4 * 3 // 2


class TestBatchedInference:
    """Parity of the grouped-batch level-2 walk vs the per-row reference."""

    def test_batched_matches_reference(self, small_world):
        acq, dis, g1, g5 = small_world
        windows = np.concatenate([g1.traces[:15], g5.traces[:15]])
        batched = dis.predict_instructions(windows, adapt=False, batched=True)
        reference = dis.predict_instructions_reference(windows, adapt=False)
        assert batched == reference

    def test_batched_matches_reference_with_given_groups(self, small_world):
        acq, dis, g1, g5 = small_world
        windows = g5.traces[:20]
        groups = dis.predict_groups(windows, adapt=False)
        assert dis.predict_instructions(
            windows, groups, adapt=False, batched=True
        ) == dis.predict_instructions_reference(windows, groups, adapt=False)

    def test_env_flag_forces_reference(self, small_world, monkeypatch):
        acq, dis, g1, g5 = small_world
        windows = g1.traces[:10]
        monkeypatch.setenv("REPRO_BATCHED_TRAIN", "0")
        forced = dis.predict_instructions(windows, adapt=False)
        assert forced == dis.predict_instructions_reference(windows, adapt=False)

    def test_missing_level_parity(self, small_world):
        acq, dis, g1, g5 = small_world
        fresh = SideChannelDisassembler(FAST, classifier_factory=QDA)
        fresh.group_model = dis.group_model
        windows = g1.traces[:8]
        assert fresh.predict_instructions(
            windows, adapt=False, batched=True
        ) == fresh.predict_instructions_reference(windows, adapt=False)


class TestCsaConfigHelper:
    def test_threshold_tightened(self):
        base = FeatureConfig(kl_threshold=0.005, normalize="none")
        adapted = csa_config(base)
        assert adapted.kl_threshold == pytest.approx(0.0005)
        assert adapted.normalize == "batch"

    def test_auto_preserved(self):
        adapted = csa_config(FeatureConfig(kl_threshold="auto"))
        assert adapted.kl_threshold == "auto"
