"""Sequence-aware disassembly tests."""

import numpy as np
import pytest

from repro.core import SequenceDisassembler, SideChannelDisassembler
from repro.features import FeatureConfig
from repro.ml import QDA
from repro.power import Acquisition

FAST = FeatureConfig(kl_threshold="auto:0.9", top_k=5, n_components=10)


@pytest.fixture(scope="module")
def fitted():
    acq = Acquisition(seed=61)
    from repro.power.acquisition import random_instance
    from repro.power.dataset import TraceSet

    parts = []
    for code, (name, pool) in enumerate(
        (("G1", ["ADD", "EOR"]), ("G2", ["LDI", "ANDI"]))
    ):
        def sampler(rng, addr, _pool=pool):
            return random_instance(str(rng.choice(_pool)), rng, word_address=addr)

        w, p = acq.capture_class(
            pool[0], 60, 3, label_override=name, target_sampler=sampler
        )
        parts.append((w, code, p))
    group_set = TraceSet(
        traces=np.concatenate([w for w, _, _ in parts]),
        labels=np.concatenate([np.full(len(w), c) for w, c, _ in parts]),
        label_names=("G1", "G2"),
        program_ids=np.concatenate([p for _, _, p in parts]),
    )
    dis = SideChannelDisassembler(FAST, classifier_factory=QDA)
    dis.fit_group_level(group_set)
    dis.fit_instruction_level(1, acq.capture_instruction_set(["ADD", "EOR"], 60, 3))
    dis.fit_instruction_level(2, acq.capture_instruction_set(["LDI", "ANDI"], 60, 3))
    return acq, dis


SOURCE = """
    ldi r16, 0x10
    add r16, r17
    eor r17, r16
    andi r16, 0x0F
"""


class TestSequenceDisassembler:
    def test_class_space_is_union_of_levels(self, fitted):
        acq, dis = fitted
        seq = SequenceDisassembler(dis)
        assert set(seq.classes) == {"ADD", "EOR", "LDI", "ANDI"}

    def test_posterior_shape_and_normalization(self, fitted):
        acq, dis = fitted
        seq = SequenceDisassembler(dis)
        bench = Acquisition(seed=61, program_shift=False)
        capture = bench.capture_program(SOURCE)
        log_post = seq.class_log_posteriors(capture.windows)
        assert log_post.shape == (4, 4)
        assert np.all(np.isfinite(log_post))
        # posteriors over the flat space are at most one (log <= 0-ish)
        assert log_post.max() < 1e-6

    def test_prior_from_assembly(self, fitted):
        acq, dis = fitted
        seq = SequenceDisassembler(dis).fit_prior_from_assembly(
            [SOURCE + SOURCE]
        )
        T = seq.hmm.transitions_
        ldi = seq.classes.index("LDI")
        add = seq.classes.index("ADD")
        assert T[ldi, add] > T[add, ldi]

    def test_decode_matches_truth_on_easy_stream(self, fitted):
        acq, dis = fitted
        seq = SequenceDisassembler(dis).fit_prior_from_assembly([SOURCE * 3])
        bench = Acquisition(seed=61, program_shift=False)
        capture = bench.capture_program(SOURCE * 5)
        decoded = seq.decode(capture.windows)
        truth = ["LDI", "ADD", "EOR", "ANDI"] * 5
        accuracy = np.mean([d == t for d, t in zip(decoded, truth)])
        assert accuracy > 0.85

    def test_sequence_not_worse_than_independent(self, fitted):
        acq, dis = fitted
        seq = SequenceDisassembler(dis).fit_prior_from_assembly([SOURCE * 3])
        bench = Acquisition(seed=61, program_shift=False)
        capture = bench.capture_program(SOURCE * 5)
        truth = ["LDI", "ADD", "EOR", "ANDI"] * 5
        independent = seq.decode_independent(capture.windows)
        decoded = seq.decode(capture.windows)
        acc_i = np.mean([d == t for d, t in zip(independent, truth)])
        acc_s = np.mean([d == t for d, t in zip(decoded, truth)])
        assert acc_s >= acc_i - 0.05

    def test_unfitted_prior_raises(self, fitted):
        acq, dis = fitted
        seq = SequenceDisassembler(dis)
        with pytest.raises(RuntimeError):
            seq.decode(np.zeros((2, 315)))

    def test_requires_fitted_hierarchy(self):
        with pytest.raises(ValueError):
            SequenceDisassembler(SideChannelDisassembler(FAST))
