"""Disassembler template persistence tests."""

import numpy as np
import pytest

from repro.core import SideChannelDisassembler
from repro.features import FeatureConfig
from repro.ml import QDA
from repro.power import Acquisition

FAST = FeatureConfig(kl_threshold="auto:0.9", top_k=5, n_components=8)


@pytest.fixture(scope="module")
def fitted():
    acq = Acquisition(seed=81)
    dis = SideChannelDisassembler(FAST, classifier_factory=QDA)
    train = acq.capture_instruction_set(["ADD", "EOR", "LDS"], 40, 2)
    dis.fit_instruction_level(1, train)
    return dis, train


class TestPersistence:
    def test_round_trip_predictions_identical(self, fitted, tmp_path):
        dis, train = fitted
        path = tmp_path / "templates.pkl"
        dis.save(path)
        loaded = SideChannelDisassembler.load(path)
        original = dis.instruction_models[1].predict(train.traces[:20])
        restored = loaded.instruction_models[1].predict(train.traces[:20])
        np.testing.assert_array_equal(original, restored)

    def test_config_preserved(self, fitted, tmp_path):
        dis, _ = fitted
        path = tmp_path / "templates.pkl"
        dis.save(path)
        loaded = SideChannelDisassembler.load(path)
        assert loaded.feature_config == dis.feature_config

    def test_version_mismatch_rejected(self, fitted, tmp_path):
        import pickle

        dis, _ = fitted
        path = tmp_path / "templates.pkl"
        dis.save(path)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = "0.0.0"
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ValueError, match="re-train"):
            SideChannelDisassembler.load(path)
