"""Confidence-gated abstention: the ladder, the gate, the sentinel."""

import numpy as np
import pytest

from repro.core import ABSTAIN_KEY, SideChannelDisassembler
from repro.core.hierarchy import _class_columns, _classifier_confidence
from repro.core.types import DisassembledInstruction
from repro.features import FeatureConfig


class _ProbaClassifier:
    classes_ = np.array([0, 1, 2])

    def predict_proba(self, features):
        return np.array([[0.7, 0.2, 0.1], [0.1, 0.1, 0.8]])


class _DecisionClassifier:
    classes_ = np.array([0, 1])

    def decision_function(self, features):
        return np.array([[4.0, 0.0], [0.0, 0.0]])


class _BinaryMarginClassifier:
    classes_ = np.array([0, 1])

    def decision_function(self, features):
        return np.array([3.0, 0.0])


class _OpaqueClassifier:
    """Pairwise-voting shape: no proba, no per-class decision surface."""


class TestConfidenceLadder:
    def test_class_columns_maps_noncontiguous_codes(self):
        clf = _ProbaClassifier()
        clf.classes_ = np.array([2, 5, 9])
        np.testing.assert_array_equal(
            _class_columns(clf, np.array([5, 2, 9])), [1, 0, 2]
        )
        np.testing.assert_array_equal(
            _class_columns(object(), np.array([3, 0])), [3, 0]
        )

    def test_posterior_preferred(self):
        conf = _classifier_confidence(
            _ProbaClassifier(), np.zeros((2, 4)), np.array([0, 2])
        )
        np.testing.assert_allclose(conf, [0.7, 0.8])

    def test_decision_softmax_fallback(self):
        conf = _classifier_confidence(
            _DecisionClassifier(), np.zeros((2, 4)), np.array([0, 1])
        )
        expected_first = np.exp(0.0) / (np.exp(0.0) + np.exp(-4.0))
        assert conf[0] == pytest.approx(expected_first)
        assert conf[1] == pytest.approx(0.5)

    def test_binary_margin_fallback(self):
        conf = _classifier_confidence(
            _BinaryMarginClassifier(), np.zeros((2, 4)), np.array([1, 0])
        )
        assert conf[0] == pytest.approx(1.0 / (1.0 + np.exp(-3.0)))
        assert conf[1] == pytest.approx(0.5)

    def test_opaque_classifier_never_abstains(self):
        conf = _classifier_confidence(
            _OpaqueClassifier(), np.zeros((3, 4)), np.array([0, 1, 2])
        )
        np.testing.assert_array_equal(conf, [1.0, 1.0, 1.0])


def _stub_disassembler(groups, group_conf, keys, key_conf):
    """A disassembler whose two hierarchy levels are canned answers."""
    dis = SideChannelDisassembler(
        FeatureConfig(), classifier_factory=lambda: None
    )
    dis.predict_groups_with_confidence = lambda windows, adapt=None: (
        np.asarray(groups), np.asarray(group_conf, dtype=np.float64)
    )
    dis.predict_groups = lambda windows, adapt=None: np.asarray(groups)
    dis.predict_instructions_with_confidence = (
        lambda windows, g=None, gc=None, adapt=None: (
            list(keys),
            np.asarray(gc if gc is not None else group_conf)
            * np.asarray(key_conf, dtype=np.float64),
        )
    )
    dis.predict_instructions = (
        lambda windows, groups=None, adapt=None: list(keys)
    )
    return dis


class TestAbstention:
    def test_gate_splits_on_chained_confidence(self):
        dis = _stub_disassembler(
            groups=[1, 1, 5],
            group_conf=[0.99, 0.99, 0.6],
            keys=["ADD", "EOR", "LDS"],
            key_conf=[0.99, 0.5, 0.99],
        )
        out = dis.disassemble(np.zeros((3, 8)), abstain_threshold=0.9)
        assert [o.key for o in out] == ["ADD", ABSTAIN_KEY, ABSTAIN_KEY]
        assert out[0].confidence == pytest.approx(0.99 * 0.99)
        # Abstentions keep the routing evidence: group + confidence.
        assert out[1].abstained and out[1].group == 1
        assert out[2].confidence == pytest.approx(0.6 * 0.99)

    def test_no_threshold_never_abstains(self):
        dis = _stub_disassembler(
            groups=[1], group_conf=[0.01], keys=["ADD"], key_conf=[0.01]
        )
        out = dis.disassemble(np.zeros((1, 8)))
        assert out[0].key == "ADD"
        assert out[0].confidence is None
        assert not out[0].abstained


class TestAbstainRendering:
    def test_sentinel_renders_as_is(self):
        abstained = DisassembledInstruction(key=ABSTAIN_KEY, group=3)
        assert abstained.abstained
        assert abstained.text == ABSTAIN_KEY
        with pytest.raises(KeyError, match="abstained or group-only"):
            abstained.spec

    def test_group_placeholder_renders_as_is(self):
        partial = DisassembledInstruction(key="G5?", group=5)
        assert not partial.abstained
        assert partial.text == "G5?"
        with pytest.raises(KeyError):
            partial.spec

    def test_concrete_key_still_resolves(self):
        instr = DisassembledInstruction(key="ADD", group=1, rd=2, rr=3)
        assert instr.spec.key == "ADD"
        assert instr.text == "add r2, r3"
        assert not instr.abstained
