"""Campaign engine: grid spec, retry funnel, chaos, resume, Pareto."""

import pytest

from repro.experiments.campaign import (
    CampaignConfig,
    Cell,
    CellRunner,
    ChaosConfig,
    ChaosError,
    GridSpec,
    default_grid,
    evaluate_synthetic,
    pareto_front,
    run_campaign,
)

TINY_AXES = {
    "decimation": (1, 4),
    "omega0": (6.0, 8.0),
    "kl_threshold": ("auto:0.9", "inf"),
    "fault_rate": (0.0, 0.15),
}


def tiny_spec(**overrides):
    axes = dict(TINY_AXES)
    axes.update(overrides)
    return GridSpec.from_axes(axes)


class TestGridSpec:
    def test_enumerates_cartesian_product_in_order(self):
        spec = GridSpec.from_axes({"a": (1, 2), "b": ("x", "y")})
        cells, excluded = spec.enumerate()
        assert excluded == 0
        assert [c.param_dict for c in cells] == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_constraints_exclude_and_count(self):
        spec = GridSpec.from_axes(
            {"a": (1, 2, 3)}, constraints=(lambda p: p["a"] != 2,)
        )
        cells, excluded = spec.enumerate()
        assert [c.param_dict["a"] for c in cells] == [1, 3]
        assert excluded == 1
        assert spec.n_raw() == 3

    def test_cell_ids_are_stable_and_order_independent(self):
        forward = GridSpec.from_axes({"a": (1,), "b": (2,)})
        backward = GridSpec.from_axes({"b": (2,), "a": (1,)})
        fwd_cell = forward.enumerate()[0][0]
        bwd_cell = backward.enumerate()[0][0]
        assert fwd_cell.cell_id == bwd_cell.cell_id  # content-addressed
        assert len(fwd_cell.cell_id) == 12

    def test_cell_ids_are_distinct_per_cell(self):
        cells, _ = tiny_spec().enumerate()
        assert len({c.cell_id for c in cells}) == len(cells)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            GridSpec.from_axes({"a": ()})
        with pytest.raises(ValueError, match="at least one axis"):
            GridSpec.from_axes({})

    def test_fingerprint_tracks_grid_identity(self):
        assert tiny_spec().fingerprint() == tiny_spec().fingerprint()
        changed = tiny_spec(decimation=(1, 2))
        assert changed.fingerprint() != tiny_spec().fingerprint()

    def test_default_grids_exclude_unresolvable_band(self):
        cells, excluded = default_grid("bench").enumerate()
        assert excluded > 0
        assert all(
            not (c.param_dict["decimation"] >= 8
                 and c.param_dict["omega0"] >= 12.0)
            for c in cells
        )
        with pytest.raises(KeyError, match="no campaign grid"):
            default_grid("nope")


class TestChaos:
    def test_rate_zero_never_disrupts(self):
        chaos = ChaosConfig(rate=0.0, seed=1)
        for i in range(50):
            chaos.disrupt(f"cell-{i}", 0)  # must not raise

    def test_disruption_is_deterministic_in_cell_and_attempt(self):
        chaos = ChaosConfig(rate=0.5, seed=3)

        def outcome(cell_id, attempt):
            try:
                chaos.disrupt(cell_id, attempt)
                return "ok"
            except ChaosError as exc:
                return str(exc)

        first = [outcome(f"c{i}", a) for i in range(40) for a in (0, 1)]
        second = [outcome(f"c{i}", a) for i in range(40) for a in (0, 1)]
        assert first == second
        assert any(o != "ok" for o in first)
        assert any(o == "ok" for o in first)

    def test_driver_process_never_killed_only_raises(self):
        # In the main process every chaos mode must degrade to
        # ChaosError — os._exit here would kill the test run itself.
        chaos = ChaosConfig(rate=1.0, seed=0)
        for i in range(30):
            with pytest.raises(ChaosError):
                chaos.disrupt(f"cell-{i}", 0)


class TestCellRunner:
    def test_unknown_evaluator_rejected(self):
        with pytest.raises(KeyError, match="unknown evaluator"):
            CellRunner("nope", 1, ChaosConfig())

    def test_ok_result_carries_metrics(self):
        cell = tiny_spec().enumerate()[0][0]
        runner = CellRunner("synthetic", 7, ChaosConfig())
        result = runner((cell, 0))
        assert result.status == "ok"
        assert result.attempts == 1
        assert set(result.metrics) == {
            "accuracy", "capture_cost", "inference_cost"
        }

    def test_in_cell_error_becomes_error_result(self):
        cell = tiny_spec().enumerate()[0][0]
        runner = CellRunner("synthetic", 7, ChaosConfig(rate=1.0, seed=0))
        result = runner((cell, 0))
        assert result.status == "error"
        assert "ChaosError" in result.error


class TestCampaignRun:
    def test_clean_run_completes_every_cell(self):
        result = run_campaign(
            CampaignConfig(spec=tiny_spec(), n_jobs=1, shard_size=5)
        )
        coverage = result.report["coverage"]
        assert coverage["complete"] and coverage["accounted"]
        assert coverage["n_completed"] == 16
        assert len(result.table.rows) == 16
        assert all(r["status"] == "completed" for r in result.table.rows)

    def test_rows_follow_enumeration_order(self):
        result = run_campaign(
            CampaignConfig(spec=tiny_spec(), n_jobs=1, shard_size=3)
        )
        cells, _ = tiny_spec().enumerate()
        assert [r["cell"] for r in result.table.rows] == [
            c.cell_id for c in cells
        ]

    def test_chaos_run_terminates_and_accounts_for_everything(self):
        result = run_campaign(
            CampaignConfig(
                spec=tiny_spec(),
                chaos_rate=0.3,
                chaos_hang_seconds=1.0,
                n_jobs=1,  # serial: crash/hang degrade to ChaosError
                retries=0,
                shard_size=8,
            )
        )
        coverage = result.report["coverage"]
        assert coverage["accounted"]
        assert coverage["n_quarantined"] > 0
        for entry in result.report["quarantined"]:
            assert entry["error"]
            assert entry["params"]

    def test_retries_rescue_transient_chaos(self):
        hostile = run_campaign(
            CampaignConfig(
                spec=tiny_spec(), chaos_rate=0.3, n_jobs=1,
                retries=0, shard_size=8,
            )
        )
        patient = run_campaign(
            CampaignConfig(
                spec=tiny_spec(), chaos_rate=0.3, n_jobs=1,
                retries=3, shard_size=8,
            )
        )
        h_cov = hostile.report["coverage"]
        p_cov = patient.report["coverage"]
        assert p_cov["n_completed"] > h_cov["n_completed"]
        retried = [
            r for r in patient.results
            if r.status == "completed" and r.attempts > 1
        ]
        assert retried  # some cells genuinely went through the funnel

    def test_results_independent_of_worker_count(self):
        serial = run_campaign(
            CampaignConfig(spec=tiny_spec(), n_jobs=1, shard_size=4)
        )
        pooled = run_campaign(
            CampaignConfig(spec=tiny_spec(), n_jobs=2, shard_size=4)
        )
        assert serial.table.rows == pooled.table.rows
        assert serial.report["pareto_front"] == pooled.report["pareto_front"]

    def test_checkpoint_resume_is_bit_identical(self, tmp_path):
        config = CampaignConfig(
            spec=tiny_spec(), n_jobs=1, shard_size=4,
            checkpoint_dir=tmp_path / "camp",
        )
        baseline = run_campaign(
            CampaignConfig(spec=tiny_spec(), n_jobs=1, shard_size=4)
        )
        first = run_campaign(config)
        resumed = run_campaign(config)  # all four shards replay from disk
        assert first.table.rows == baseline.table.rows
        assert resumed.table.rows == baseline.table.rows
        assert resumed.report["campaign"]["n_shards_resumed"] == 4

    def test_stop_after_shards_skips_and_resume_completes(self, tmp_path):
        config = CampaignConfig(
            spec=tiny_spec(), n_jobs=1, shard_size=4,
            checkpoint_dir=tmp_path / "camp",
        )
        partial = run_campaign(
            CampaignConfig(
                spec=tiny_spec(), n_jobs=1, shard_size=4,
                checkpoint_dir=tmp_path / "camp", stop_after_shards=2,
            )
        )
        coverage = partial.report["coverage"]
        assert coverage["n_completed"] == 8
        assert coverage["n_skipped"] == 8
        assert coverage["accounted"] and not coverage["complete"]
        skipped_rows = [
            r for r in partial.table.rows if r["status"] == "skipped"
        ]
        assert len(skipped_rows) == 8

        finished = run_campaign(config)
        baseline = run_campaign(
            CampaignConfig(spec=tiny_spec(), n_jobs=1, shard_size=4)
        )
        assert finished.table.rows == baseline.table.rows
        assert finished.report["campaign"]["n_shards_resumed"] == 2

    def test_mismatched_grid_refuses_checkpoint_dir(self, tmp_path):
        run_campaign(
            CampaignConfig(
                spec=tiny_spec(), n_jobs=1,
                checkpoint_dir=tmp_path / "camp",
            )
        )
        with pytest.raises(ValueError, match="different run"):
            run_campaign(
                CampaignConfig(
                    spec=tiny_spec(decimation=(1, 2)), n_jobs=1,
                    checkpoint_dir=tmp_path / "camp",
                )
            )

    def test_backoff_uses_injected_sleep(self):
        slept = []
        run_campaign(
            CampaignConfig(
                spec=tiny_spec(), chaos_rate=0.3, n_jobs=1,
                retries=2, backoff=0.5, shard_size=16,
                sleep=slept.append,
            )
        )
        assert slept  # funnel waited between retry rounds
        assert all(0.0 < s <= 30.0 * 1.25 for s in slept)


class TestParetoReport:
    def test_pareto_front_drops_dominated_points(self):
        points = [
            {"accuracy": 90.0, "capture_cost": 10.0, "inference_cost": 5.0},
            {"accuracy": 80.0, "capture_cost": 10.0, "inference_cost": 5.0},
            {"accuracy": 95.0, "capture_cost": 20.0, "inference_cost": 5.0},
            {"accuracy": 85.0, "capture_cost": 5.0, "inference_cost": 9.0},
        ]
        assert pareto_front(points) == [0, 2, 3]

    def test_identical_points_all_survive(self):
        point = {"accuracy": 1.0, "capture_cost": 1.0, "inference_cost": 1.0}
        assert pareto_front([dict(point), dict(point)]) == [0, 1]

    def test_report_front_is_consistent_and_recommended_tops_it(self):
        result = run_campaign(
            CampaignConfig(spec=tiny_spec(), n_jobs=1)
        )
        front = result.report["pareto_front"]
        assert front
        recommended = result.report["recommended"]
        assert recommended == front[0]
        best_accuracy = max(e["metrics"]["accuracy"] for e in front)
        assert recommended["metrics"]["accuracy"] == best_accuracy
        # No front member may dominate another.
        metrics = [e["metrics"] for e in front]
        assert pareto_front(metrics) == list(range(len(metrics)))

    def test_synthetic_surface_has_nontrivial_tradeoff(self):
        cells, _ = tiny_spec().enumerate()
        metrics = [evaluate_synthetic(c, 2018) for c in cells]
        front = pareto_front(metrics)
        assert 1 < len(front) < len(cells)


class TestObsIntegration:
    def test_campaign_spans_and_counters(self):
        from repro import obs

        collector = obs.activate()
        try:
            run_campaign(
                CampaignConfig(
                    spec=tiny_spec(), chaos_rate=0.3, n_jobs=1,
                    retries=1, shard_size=8,
                )
            )
        finally:
            obs.deactivate()
        names = {s.name for s in collector.spans}
        assert {"campaign.run", "campaign.shard", "campaign.cell"} <= names
        snapshot = collector.metrics.snapshot()
        assert snapshot["campaign.cells_completed"]["value"] > 0
        assert snapshot["campaign.cell_retries"]["value"] > 0
