"""Smoke tests of the experiment runners (tiny scale, shape checks only)."""

import numpy as np
import pytest

from repro.experiments import (
    BENCH,
    PAPER,
    SMOKE,
    Scale,
    ablations,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    get_scale,
    malware,
    table1,
    table2,
    table3,
    table4,
)

TINY = SMOKE.with_overrides(
    n_train_per_class=50,
    n_test_per_class=16,
    n_programs=3,
    csa_train_per_class=120,
    csa_programs=4,
    registers=(2, 20),
    pc_sweep=(4,),
    var_sweep=(3,),
    classes_per_group_cap=2,
    n_devices=1,
)


class TestScales:
    def test_presets_resolve(self):
        assert get_scale("smoke") is SMOKE
        assert get_scale("bench") is BENCH
        assert get_scale("paper") is PAPER
        assert get_scale(TINY) is TINY

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_components_budget(self):
        assert TINY.components(43) <= TINY.n_train_per_class // 3
        assert PAPER.components(43) == 43


class TestStaticRunners:
    def test_table2(self):
        table = table2.run()
        assert len(table.rows) == 8
        assert sum(r["# insts"] for r in table.rows) == 112
        assert "Table 2" in table.render()

    def test_fig4(self):
        table, window = fig4.run(TINY)
        assert len(table.rows) == 7
        assert len(window) == 315
        assert "add r16, r17" in table.rows[3]["execute stage"]


class TestStatisticalRunners:
    def test_fig2(self):
        table, fields = fig2.run(TINY)
        assert fields.between.shape == (50, 315)
        assert len(fields.selected) == 5
        assert fields.peaks.sum() > 0

    def test_fig3_contrast(self):
        table, data = fig3.run(TINY)
        worst = table.rows[0]["separation score"]
        best = table.rows[1]["separation score"]
        assert worst > best  # shifted features scatter programs apart

    def test_fig5_shapes(self):
        out = fig5.run(TINY, classifier_names=["QDA"])
        assert set(out) == {"groups", "group1"}
        groups = out["groups"]
        assert groups.rows[0]["classifier"] == "QDA"
        assert 0 <= groups.rows[0]["PC=4"] <= 100

    def test_fig6_shapes(self):
        out = fig6.run(TINY, classifier_names=["QDA"])
        voting = out["voting"].rows[0]["vars=3"]
        general = out["general"].rows[0]["vars=3"]
        assert 0 <= voting <= 100 and 0 <= general <= 100

    def test_table3_shape(self):
        # Ordering (noCSA collapse < CSA rescue) is a bench-scale property;
        # at tiny scale we only verify the table's structure and ranges.
        table = table3.run(TINY)
        assert len(table.rows) == 2
        for row in table.rows:
            for column in ("without CSA", "CSA w/o norm", "CSA with norm"):
                assert 0.0 <= row[column] <= 100.0

    def test_table4_row_count(self):
        table = table4.run(TINY)
        assert len(table.rows) == 2
        assert "Dev. 1" in table.columns

    def test_table1_has_measured_and_quoted(self):
        table = table1.run(TINY)
        rates = " ".join(str(r["recognition rate"]) for r in table.rows)
        assert "reported" in rates and "measured" in rates

    def test_malware_detects(self):
        table = malware.run(TINY)
        assert table.rows[0]["verdict"] in ("CLEAN", "FALSE ALARM")
        assert table.rows[1]["verdict"] in ("DETECTED", "MISSED")

    def test_fig1_dimensions(self):
        from repro.experiments import fig1

        table = fig1.run(TINY)
        dims = table.column("dimension")
        assert dims[1].endswith("15750")
        assert 0 < int(dims[2]) < 15750

    def test_svm_grid(self):
        from repro.experiments import svm_grid

        table = svm_grid.run(TINY)
        assert any(row["selected"] == "<==" for row in table.rows)
        assert table.rows[-1]["selected"] == "held-out SR"

    def test_sampling_rate(self):
        from repro.experiments import sampling_rate

        table = sampling_rate.run(TINY)
        assert table.column("rate (GS/s)")[0] == 2.5
        assert table.column("samples/window")[-1] < 40

    def test_multisession(self):
        from repro.experiments import multisession

        table = multisession.run(TINY)
        assert len(table.rows) == 3
        for row in table.rows:
            assert 0.0 <= row["SR (%)"] <= 100.0

    def test_cwt_ablation(self):
        table = ablations.run_cwt_ablation(TINY)
        assert len(table.rows) == 2

    def test_hierarchy_ablation_machine_count(self):
        table = ablations.run_hierarchy_ablation(TINY)
        flat_row, hier_row = table.rows
        assert (
            hier_row["1v1 machines (SVM equivalent)"]
            < flat_row["1v1 machines (SVM equivalent)"]
        )
