"""Cross-artefact consistency: CLI registry vs benchmarks vs DESIGN.md."""

from pathlib import Path

import pytest

from repro.experiments.__main__ import RUNNERS

REPO = Path(__file__).resolve().parents[2]


class TestArtefactConsistency:
    def test_every_paper_artefact_has_a_bench(self):
        bench_names = {
            p.stem for p in (REPO / "benchmarks").glob("bench_*.py")
        }
        # Every table/figure runner must have a regenerating bench.
        for experiment in (
            "table1", "table2", "table3", "table4",
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "endtoend", "malware",
        ):
            assert f"bench_{experiment}" in bench_names, experiment

    def test_design_md_references_benches_that_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for token in text.split():
            if token.startswith("`benchmarks/bench_") and token.endswith(".py`"):
                path = REPO / token.strip("`|")
                assert path.exists(), token

    def test_readme_examples_exist(self):
        text = (REPO / "README.md").read_text()
        for line in text.splitlines():
            if "`examples/" in line:
                name = line.split("`examples/")[1].split("`")[0]
                assert (REPO / "examples" / name).exists(), name

    def test_cli_descriptions_unique(self):
        descriptions = [d for _, d in RUNNERS.values()]
        assert len(set(descriptions)) == len(descriptions)

    def test_experiments_md_mentions_every_table_and_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artefact in (
            "Table 1", "Table 2", "Table 3", "Table 4",
            "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6",
            "§5.7", "§5.4", "§5.2",
        ):
            assert artefact in text, artefact
