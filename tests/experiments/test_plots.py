"""ASCII rendering tests."""

import numpy as np
import pytest

from repro.experiments.plots import ascii_heatmap, ascii_scatter


class TestHeatmap:
    def test_shape_and_frame(self):
        field = np.zeros((50, 315))
        field[25, 150] = 10.0
        art = ascii_heatmap(field, width=60, height=12, title="T")
        lines = art.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "+" + "-" * 60 + "+"
        assert len(lines) == 1 + 12 + 2 + 1

    def test_peak_is_darkest(self):
        field = np.zeros((20, 40))
        field[10, 20] = 100.0
        art = ascii_heatmap(field, width=40, height=20, log=False)
        assert "@" in art

    def test_marks_drawn(self):
        field = np.random.default_rng(0).random((20, 40))
        art = ascii_heatmap(field, width=40, height=20, marks=[(5, 10)])
        assert "X" in art

    def test_small_field(self):
        art = ascii_heatmap(np.ones((3, 4)), width=100, height=50)
        assert "+" in art  # does not exceed the field's own size


class TestScatter:
    def test_groups_get_distinct_glyphs(self):
        rng = np.random.default_rng(1)
        art = ascii_scatter(
            {
                "a": rng.normal((0, 0), 0.5, (20, 2)),
                "b": rng.normal((5, 5), 0.5, (20, 2)),
            }
        )
        assert "o" in art and "x" in art
        assert "o = a" in art and "x = b" in art

    def test_constant_axis_safe(self):
        points = np.column_stack([np.arange(5), np.zeros(5)])
        art = ascii_scatter({"flat": points})
        assert "o" in art
