"""Workload-construction tests."""

import numpy as np
import pytest

from repro.experiments.scales import SMOKE
from repro.experiments.workloads import (
    MASKED_AES_SNIPPET,
    TAMPERED_AES_SNIPPET,
    capture_group_set,
    group_classes,
    group_pool,
)
from repro.isa import assemble
from repro.isa.groups import CROSS_GROUP_DUPLICATES
from repro.power import Acquisition


class TestPools:
    def test_group_pool_excludes_duplicates(self):
        for group in range(1, 9):
            assert CROSS_GROUP_DUPLICATES.isdisjoint(group_pool(group))

    def test_group_classes_cap(self):
        capped = group_classes(5, SMOKE)  # smoke caps at 4
        assert len(capped) == SMOKE.classes_per_group_cap
        uncapped = group_classes(5, SMOKE.with_overrides(classes_per_group_cap=None))
        assert len(uncapped) == 24


class TestGroupCapture:
    def test_labels_and_balance(self):
        acq = Acquisition(seed=5)
        trace_set = capture_group_set(acq, 12, 2)
        assert trace_set.label_names == tuple(f"G{g}" for g in range(1, 9))
        assert np.bincount(trace_set.labels).tolist() == [12] * 8


class TestAesSnippets:
    def test_golden_assembles(self):
        instructions = assemble(MASKED_AES_SNIPPET)
        keys = [i.spec.key for i in instructions]
        assert keys == ["LDI", "LDI", "EOR", "MOV", "SWAP", "AND", "EOR"]

    def test_tampering_is_one_register(self):
        golden = assemble(MASKED_AES_SNIPPET)
        tampered = assemble(TAMPERED_AES_SNIPPET)
        assert len(golden) == len(tampered)
        diffs = [
            (g.values, t.values)
            for g, t in zip(golden, tampered)
            if g.values != t.values
        ]
        assert diffs == [((16, 17), (16, 0))]
