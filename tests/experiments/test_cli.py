"""CLI (python -m repro.experiments) tests."""

import pytest

from repro.experiments.__main__ import RUNNERS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in RUNNERS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nonexistent"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        captured = capsys.readouterr()
        assert "Table 2" in captured.out
        # Progress messages go through repro.obs.log to stderr: stdout
        # stays reserved for result tables.
        assert "completed in" in captured.err

    def test_runner_registry_complete(self):
        # every runner entry is callable with a scale (except table2)
        for name, (runner, description) in RUNNERS.items():
            assert callable(runner)
            assert description
