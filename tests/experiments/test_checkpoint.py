"""Crash-safe checkpoint store + runner resume semantics."""

import numpy as np
import pytest

from repro.experiments import CheckpointStore, ablations, checkpoint_store
from repro.experiments.checkpoint import _NullStore, _slug
from repro.experiments.endtoend import stage_rng
from repro.experiments.scales import SMOKE


class TestCheckpointStore:
    def test_stage_computes_once_then_loads(self, tmp_path):
        store = CheckpointStore(tmp_path, experiment="t")
        calls = []

        def compute():
            calls.append(1)
            return {"value": 42}

        assert store.stage("alpha", compute) == {"value": 42}
        assert store.stage("alpha", compute) == {"value": 42}
        assert calls == [1]
        assert store.has("alpha")

    def test_save_load_roundtrip_numpy(self, tmp_path):
        store = CheckpointStore(tmp_path, experiment="t")
        payload = np.random.default_rng(0).normal(size=(4, 5))
        store.save("arr", payload)
        np.testing.assert_array_equal(store.load("arr"), payload)

    def test_no_torn_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path, experiment="t")
        store.save("x", list(range(1000)))
        leftovers = [
            p.name
            for p in tmp_path.iterdir()
            if p.suffix not in (".pkl", ".json")
        ]
        assert leftovers == []

    def test_meta_fingerprint_mismatch_raises(self, tmp_path):
        CheckpointStore(tmp_path, experiment="endtoend", scale="smoke")
        # Same run, same params: fine.
        CheckpointStore(tmp_path, experiment="endtoend", scale="smoke")
        with pytest.raises(ValueError, match="different run"):
            CheckpointStore(tmp_path, experiment="endtoend", scale="paper")

    def test_clear_removes_stages_keeps_meta(self, tmp_path):
        store = CheckpointStore(tmp_path, experiment="t")
        store.save("a", 1)
        store.clear()
        assert not store.has("a")
        # Fingerprint survives: a mismatched reopen still raises.
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, experiment="other")

    def test_stage_names_are_slugged(self, tmp_path):
        store = CheckpointStore(tmp_path, experiment="t")
        store.save("fit G1/QDA auto:0.9", 7)
        assert store.load("fit G1/QDA auto:0.9") == 7
        assert _slug("a b/c") == "a-b-c"
        with pytest.raises(ValueError):
            _slug("///")

    def test_null_store_when_disabled(self):
        store = checkpoint_store(None)
        assert isinstance(store, _NullStore)
        assert not store.has("x")
        assert store.stage("x", lambda: 3) == 3
        assert store.save("x", 4) == 4
        with pytest.raises(KeyError):
            store.load("x")
        store.clear()


class TestStageRng:
    def test_independent_per_stage(self):
        a = stage_rng(7, "groups").normal(size=4)
        b = stage_rng(7, "pooled").normal(size=4)
        assert not np.allclose(a, b)

    def test_deterministic_per_stage(self):
        np.testing.assert_array_equal(
            stage_rng(7, "groups").normal(size=4),
            stage_rng(7, "groups").normal(size=4),
        )


TINY = SMOKE.with_overrides(
    n_train_per_class=40, n_test_per_class=12, n_programs=2,
    classes_per_group_cap=2,
)


class TestRunnerResume:
    def test_interrupted_run_resumes_to_identical_table(self, tmp_path):
        # Full run without checkpoints = ground truth.
        expected = ablations.run_cwt_ablation(TINY)
        # Checkpointed run, then simulate a crash by deleting the last
        # stage: resume must replay the rest from disk and reproduce the
        # table exactly.
        ckpt = tmp_path / "cwt"
        first = ablations.run_cwt_ablation(TINY, checkpoint_dir=ckpt)
        assert first.rows == expected.rows
        (ckpt / "fit-False.pkl").unlink()
        resumed = ablations.run_cwt_ablation(TINY, checkpoint_dir=ckpt)
        assert resumed.rows == expected.rows

    def test_resume_with_other_scale_refuses(self, tmp_path):
        ckpt = tmp_path / "cwt"
        ablations.run_cwt_ablation(TINY, checkpoint_dir=ckpt)
        other = TINY.with_overrides(name="tiny-2")
        with pytest.raises(ValueError, match="different run"):
            ablations.run_cwt_ablation(other, checkpoint_dir=ckpt)


class TestCorruptCheckpoints:
    """Torn, truncated or garbage stage files must degrade, not crash."""

    def _store(self, tmp_path):
        return CheckpointStore(tmp_path, experiment="corrupt-t")

    def test_load_truncated_pickle_raises_typed_error(self, tmp_path):
        from repro.experiments.checkpoint import CheckpointCorruptError

        store = self._store(tmp_path)
        store.save("alpha", {"value": list(range(1000))})
        path = tmp_path / "alpha.pkl"
        path.write_bytes(path.read_bytes()[: 10])  # torn mid-write copy
        with pytest.raises(CheckpointCorruptError, match="alpha"):
            store.load("alpha")

    def test_load_garbage_payload_raises_typed_error(self, tmp_path):
        from repro.experiments.checkpoint import CheckpointCorruptError

        store = self._store(tmp_path)
        (tmp_path / "beta.pkl").write_bytes(b"\x00\xffnot a pickle\x80")
        with pytest.raises(CheckpointCorruptError, match="beta"):
            store.load("beta")

    def test_stage_recomputes_over_truncated_file(self, tmp_path):
        store = self._store(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"value": 42}

        assert store.stage("gamma", compute) == {"value": 42}
        path = tmp_path / "gamma.pkl"
        path.write_bytes(path.read_bytes()[: 4])
        # Degrades to a recompute and rewrites a healthy checkpoint.
        assert store.stage("gamma", compute) == {"value": 42}
        assert calls == [1, 1]
        assert store.stage("gamma", compute) == {"value": 42}
        assert calls == [1, 1]

    def test_stage_recomputes_over_garbage_file(self, tmp_path):
        store = self._store(tmp_path)
        (tmp_path / "delta.pkl").write_bytes(b"garbage" * 7)
        assert store.stage("delta", lambda: "fresh") == "fresh"
        assert store.load("delta") == "fresh"

    def test_stage_recomputes_over_empty_file(self, tmp_path):
        store = self._store(tmp_path)
        (tmp_path / "eps.pkl").write_bytes(b"")
        assert store.stage("eps", lambda: 7) == 7

    def test_corrupt_meta_discards_stale_stages(self, tmp_path):
        store = self._store(tmp_path)
        store.save("alpha", 1)
        (tmp_path / "meta.json").write_text("{torn", encoding="utf-8")
        reopened = self._store(tmp_path)
        # The unverifiable stage is gone; the fingerprint is rewritten.
        assert not reopened.has("alpha")
        again = self._store(tmp_path)  # healthy fingerprint round-trips
        assert not again.has("alpha")

    def test_corrupt_meta_with_binary_garbage(self, tmp_path):
        store = self._store(tmp_path)
        store.save("alpha", 1)
        (tmp_path / "meta.json").write_bytes(b"\x80\x81\xfe\xff")
        assert not self._store(tmp_path).has("alpha")

    def test_corruption_bumps_counter(self, tmp_path):
        from repro import obs

        store = self._store(tmp_path)
        store.save("zeta", [1, 2, 3])
        (tmp_path / "zeta.pkl").write_bytes(b"junk")
        collector = obs.activate()
        try:
            assert store.stage("zeta", lambda: [1, 2, 3]) == [1, 2, 3]
        finally:
            obs.deactivate()
        snapshot = collector.metrics.snapshot()
        assert snapshot["checkpoint.corrupt"]["value"] == 1
