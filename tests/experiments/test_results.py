"""ResultTable rendering tests."""

import pytest

from repro.experiments import ResultTable


class TestResultTable:
    def test_add_and_column(self):
        table = ResultTable(title="T", columns=["name", "sr"])
        table.add_row(name="a", sr=1.25)
        table.add_row(name="b", sr=2.0)
        assert table.column("sr") == [1.25, 2.0]

    def test_unknown_column_rejected(self):
        table = ResultTable(title="T", columns=["name"])
        with pytest.raises(KeyError):
            table.add_row(name="a", extra=1)

    def test_render_contains_everything(self):
        table = ResultTable(
            title="Table X",
            columns=["who", "sr"],
            paper_reference={"who": "99 %"},
            notes="tiny scale",
        )
        table.add_row(who="ours", sr=98.765)
        text = table.render()
        assert "Table X" in text
        assert "ours" in text
        assert "98.77" in text  # floats rendered with 2 decimals
        assert "paper reports" in text
        assert "tiny scale" in text

    def test_render_empty_table(self):
        table = ResultTable(title="Empty", columns=["a", "b"])
        text = table.render()
        assert "Empty" in text and "a" in text

    def test_missing_cells_render_blank(self):
        table = ResultTable(title="T", columns=["a", "b"])
        table.add_row(a="x")
        assert "x" in table.render()


class TestPersistence:
    def make(self):
        table = ResultTable(
            title="Table X",
            columns=["who", "sr"],
            paper_reference={"who": "99 %"},
            notes="tiny scale",
        )
        table.add_row(who="ours", sr=98.765)
        table.add_row(who="flat", sr=91.0)
        return table

    def test_save_load_roundtrip(self, tmp_path):
        table = self.make()
        path = tmp_path / "out" / "table.json"
        table.save(path)
        loaded = ResultTable.load(path)
        assert loaded.title == table.title
        assert list(loaded.columns) == list(table.columns)
        assert loaded.rows == table.rows
        assert dict(loaded.paper_reference) == dict(table.paper_reference)
        assert loaded.notes == table.notes
        assert loaded.render() == table.render()

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "table.json"
        self.make().save(path)
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "table.json"]
        assert leftovers == []

    def test_to_dict_is_json_safe(self):
        import json

        payload = self.make().to_dict()
        rebuilt = ResultTable.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.rows == self.make().rows

    def test_meta_roundtrip(self, tmp_path):
        table = self.make()
        table.meta["obs"] = {"n_spans": 12, "counters": {"x": 1}}
        path = tmp_path / "table.json"
        table.save(path)
        loaded = ResultTable.load(path)
        assert loaded.meta == {"obs": {"n_spans": 12, "counters": {"x": 1}}}

    def test_empty_meta_omitted_from_payload(self):
        assert "meta" not in self.make().to_dict()
