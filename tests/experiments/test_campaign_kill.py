"""SIGKILL-mid-campaign integration test: resume must be bit-identical.

Launches a real ``python -m repro.experiments.campaign`` subprocess with
per-cell pacing, SIGKILLs it after the first shard checkpoint lands (a
genuine hard kill — no atexit, no finally blocks), then resumes into the
same checkpoint directory and asserts the merged ResultTable matches an
uninterrupted run row for row.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.experiments.campaign import default_grid

_SHARD_SIZE = 4  # smoke grid: 16 cells -> 4 shards


def _campaign_env():
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)  # replint: disable=REP001 -- passed through to a subprocess verbatim, no knob is read
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def _wait_for_first_shard(ckpt_dir, proc, deadline_s=120.0):
    started = time.time()
    while time.time() - started < deadline_s:
        if (ckpt_dir / f"shard-00000.pkl").exists():
            return True
        if proc.poll() is not None:
            return False  # finished (or died) before we could kill it
        time.sleep(0.05)
    return False


@pytest.mark.slow
def test_sigkill_then_resume_is_bit_identical(tmp_path):
    ckpt = tmp_path / "camp"
    cmd = [
        sys.executable, "-m", "repro.experiments.campaign",
        "--scale", "smoke",
        "--shard-size", str(_SHARD_SIZE),
        "--n-jobs", "2",
        "--cell-pause-ms", "250",
        "--checkpoint-dir", str(ckpt),
    ]
    proc = subprocess.Popen(
        cmd,
        env=_campaign_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        saw_shard = _wait_for_first_shard(ckpt, proc)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup belt
            proc.kill()
            proc.wait(timeout=30)
    assert saw_shard, "campaign never checkpointed its first shard"
    killed_shards = sorted(p.name for p in ckpt.glob("shard-*.pkl"))
    assert killed_shards, "SIGKILL landed before any checkpoint survived"
    # The kill was mid-campaign: at least the last shard is missing.
    assert len(killed_shards) < 4, "campaign finished before the kill"

    # Resume with the same parameters (pacing removed: it must not —
    # and cannot — affect results) and compare to an uninterrupted run.
    resume_config = CampaignConfig(
        spec=default_grid("smoke"),
        evaluator="synthetic",
        shard_size=_SHARD_SIZE,
        n_jobs=2,
        checkpoint_dir=ckpt,
    )
    resumed = run_campaign(resume_config)
    pristine = run_campaign(
        CampaignConfig(
            spec=default_grid("smoke"),
            evaluator="synthetic",
            shard_size=_SHARD_SIZE,
            n_jobs=2,
        )
    )
    assert resumed.table.rows == pristine.table.rows
    assert resumed.table.columns == pristine.table.columns
    assert resumed.report["coverage"] == pristine.report["coverage"]
    assert resumed.report["pareto_front"] == pristine.report["pareto_front"]
    assert resumed.report["recommended"] == pristine.report["recommended"]
    # And the checkpoints genuinely contributed.
    assert resumed.report["campaign"]["n_shards_resumed"] == len(
        killed_shards
    )


@pytest.mark.slow
def test_cli_stop_after_shards_then_resume_matches(tmp_path):
    """The CI resume drill, in miniature: two CLI invocations."""
    ckpt = tmp_path / "camp"
    table_path = tmp_path / "table.json"
    base = [
        sys.executable, "-m", "repro.experiments.campaign",
        "--scale", "smoke",
        "--shard-size", str(_SHARD_SIZE),
        "--n-jobs", "1",
        "--checkpoint-dir", str(ckpt),
    ]
    first = subprocess.run(
        base + ["--stop-after-shards", "1"],
        env=_campaign_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert first.returncode == 0, first.stderr
    assert len(list(ckpt.glob("shard-*.pkl"))) == 1

    second = subprocess.run(
        base + ["--out", str(table_path)],
        env=_campaign_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert second.returncode == 0, second.stderr

    from repro.experiments.results import ResultTable

    saved = ResultTable.load(table_path)
    pristine = run_campaign(
        CampaignConfig(
            spec=default_grid("smoke"),
            evaluator="synthetic",
            shard_size=_SHARD_SIZE,
            n_jobs=1,
        )
    )
    assert saved.rows == pristine.table.rows
