"""The live telemetry layer: flusher, heartbeats, tail CLI, crash safety.

The guarantees under test mirror DESIGN.md §16: ``status.json`` is
always a complete document or absent (atomic replace), ``metrics.jsonl``
tears at most its final line, a SIGKILL'd writer leaves nothing a reader
chokes on, and a crashed/stalled worker's heartbeat surfaces as
``stalled`` instead of silently freezing the display.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs import live, trace
from repro.obs.__main__ import main as obs_main
from repro.obs.trace import Collector, WorkerTask


def _double(x):
    return x * 2


def wait_for(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestLiveFlusher:
    def test_status_written_within_one_interval(self, tmp_path):
        live.start_live(tmp_path, flush_ms=60)
        try:
            status = live.load_status(tmp_path)
            assert status is not None, "start_live must flush immediately"
            assert status["format"] == live.STATUS_FORMAT
            assert status["pid"] == os.getpid()
            first_seq = status["seq"]
            assert wait_for(
                lambda: (live.load_status(tmp_path) or {}).get("seq", 0)
                > first_seq
            ), "no follow-up flush within the interval"
        finally:
            live.stop_live()

    def test_progress_fields_rate_and_eta(self, tmp_path):
        flusher = live.start_live(tmp_path, flush_ms=10_000)
        flusher.t0 -= 10.0  # pretend 10 s of work produced the 10 cells
        live.update_progress(
            phase="campaign", unit="cells", total=40, done=0
        )
        live.update_progress(done=10, quarantined=1, retries=3)
        status = flusher.flush_once()
        progress = status["progress"]
        assert progress["phase"] == "campaign"
        assert progress["done"] == 10
        assert progress["total"] == 40
        assert progress["quarantined"] == 1
        assert progress["retries"] == 3
        assert progress["pct"] == 25.0
        assert progress["rate_per_s"] == pytest.approx(1.0, rel=0.1)
        assert progress["eta_s"] == pytest.approx(30.0, rel=0.1)
        live.stop_live()

    def test_open_spans_visible_in_status(self, tmp_path):
        flusher = live.start_live(tmp_path, flush_ms=10_000)
        with trace.span("campaign.run"):
            with trace.span("campaign.shard"):
                status = flusher.flush_once()
        paths = [entry["path"] for entry in status["open_spans"]]
        assert "campaign.run/campaign.shard" in paths
        assert all(entry["open_ms"] >= 0 for entry in status["open_spans"])
        live.stop_live()

    def test_counters_and_gauges_in_status(self, tmp_path):
        flusher = live.start_live(tmp_path, flush_ms=10_000)
        trace.counter("campaign.cells_completed").inc(7)
        trace.gauge("campaign.cells_total").set(40.0)
        status = flusher.flush_once()
        assert status["counters"]["campaign.cells_completed"] == 7
        assert status["gauges"]["campaign.cells_total"] == 40.0
        live.stop_live()

    def test_stop_live_writes_final_snapshot(self, tmp_path):
        live.start_live(tmp_path, flush_ms=10_000)
        live.update_progress(phase="campaign", total=4, done=4)
        live.stop_live()
        status = live.load_status(tmp_path)
        assert status["final"] is True
        assert status["progress"]["done"] == 4

    def test_metrics_series_accumulates(self, tmp_path):
        flusher = live.start_live(tmp_path, flush_ms=10_000)
        flusher.flush_once()
        flusher.flush_once()
        live.stop_live()
        samples = live.read_metrics_series(tmp_path)
        assert len(samples) >= 3
        seqs = [sample["seq"] for sample in samples]
        assert seqs == sorted(seqs)

    def test_flush_interval_from_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_FLUSH_MS", "120")
        flusher = live.LiveFlusher(tmp_path)
        assert flusher.flush_ms == 120

    def test_update_progress_noop_when_inactive(self):
        assert live.active_flusher() is None
        live.update_progress(done=1)  # must not raise or create files
        assert live.heartbeat_dir() is None

    def test_start_live_activates_obs(self, tmp_path):
        assert not trace.enabled()
        live.start_live(tmp_path, flush_ms=10_000)
        assert trace.enabled()
        live.stop_live()


class TestTornFiles:
    def test_load_status_none_on_missing_or_garbage(self, tmp_path):
        assert live.load_status(tmp_path) is None
        (tmp_path / "status.json").write_text('{"pid": 12')
        assert live.load_status(tmp_path) is None
        (tmp_path / "status.json").write_text('"not a dict"')
        assert live.load_status(tmp_path) is None

    def test_metrics_series_skips_torn_line(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text(
            json.dumps({"seq": 1}) + "\n"
            + json.dumps({"seq": 2}) + "\n"
            + '{"seq": 3, "cou'  # torn mid-write
        )
        samples = live.read_metrics_series(tmp_path)
        assert [sample["seq"] for sample in samples] == [1, 2]

    def test_sigkill_mid_flush_leaves_readable_state(self, tmp_path):
        """kill -9 a busily-flushing writer; readers must never choke."""
        script = (
            "import sys, time\n"
            "from repro.obs import live\n"
            "live.start_live(sys.argv[1], flush_ms=1)\n"
            "print('up', flush=True)\n"
            "time.sleep(30)\n"
        )
        env = dict(os.environ, PYTHONPATH="src")  # replint: disable=REP001 -- passed through to a subprocess verbatim, no knob is read
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path)],
            stdout=subprocess.PIPE,
            cwd=Path(__file__).resolve().parents[2],
            env=env,
        )
        try:
            assert proc.stdout.readline().strip() == b"up"
            # Let it flush at full tilt, then kill it mid-stride.
            time.sleep(0.3)
        finally:
            proc.kill()
            proc.wait(timeout=10)
        status = live.load_status(tmp_path)
        assert status is None or isinstance(status, dict)
        # Whatever made it to disk parses, torn tail excepted.
        for sample in live.read_metrics_series(tmp_path):
            assert isinstance(sample["seq"], int)


class TestHeartbeats:
    def _beat(self, tmp_path, pid, age_s, in_flight=True):
        hb = tmp_path / "heartbeats"
        hb.mkdir(exist_ok=True)
        (hb / f"hb-{pid}.json").write_text(
            json.dumps(
                {
                    "pid": pid,
                    "updated": time.time() - age_s,
                    "in_flight": in_flight,
                    "item": "cell-123",
                    "items_done": 4,
                }
            )
        )

    def test_fresh_inflight_worker_not_stalled(self, tmp_path):
        flusher = live.start_live(tmp_path, flush_ms=10_000)
        self._beat(tmp_path, os.getpid(), age_s=0.0)
        status = flusher.flush_once()
        (worker,) = status["workers"]
        assert worker["pid"] == os.getpid()
        assert worker["alive"] is True
        assert worker["stalled"] is False
        assert worker["items_done"] == 4
        assert status["n_workers_stalled"] == 0
        live.stop_live()

    def test_silent_inflight_worker_flags_stalled(self, tmp_path, capsys):
        flusher = live.start_live(tmp_path, flush_ms=10_000)
        flusher.stall_s = 0.5
        self._beat(tmp_path, os.getpid(), age_s=60.0)
        status = flusher.flush_once()
        (worker,) = status["workers"]
        assert worker["stalled"] is True
        assert status["n_workers_stalled"] == 1
        assert "stalled" in capsys.readouterr().err
        live.stop_live()

    def test_dead_inflight_worker_flags_stalled(self, tmp_path):
        flusher = live.start_live(tmp_path, flush_ms=10_000)
        # A PID from the kernel's reserved range: never a live process.
        self._beat(tmp_path, 2**22 + 1, age_s=0.0)
        status = flusher.flush_once()
        (worker,) = status["workers"]
        assert worker["alive"] is False
        assert worker["stalled"] is True
        live.stop_live()

    def test_idle_old_worker_not_stalled(self, tmp_path):
        """A worker between items (in_flight False) is idle, not stalled."""
        flusher = live.start_live(tmp_path, flush_ms=10_000)
        flusher.stall_s = 0.5
        self._beat(tmp_path, os.getpid(), age_s=60.0, in_flight=False)
        status = flusher.flush_once()
        (worker,) = status["workers"]
        assert worker["stalled"] is False
        live.stop_live()

    def test_torn_heartbeat_skipped(self, tmp_path):
        flusher = live.start_live(tmp_path, flush_ms=10_000)
        hb = tmp_path / "heartbeats"
        (hb / "hb-999.json").write_text('{"pid": 99')
        status = flusher.flush_once()
        assert status["workers"] == []
        live.stop_live()

    def test_start_live_clears_stale_heartbeats(self, tmp_path):
        self._beat(tmp_path, 12345, age_s=600.0)
        flusher = live.start_live(tmp_path, flush_ms=10_000)
        status = flusher.flush_once()
        assert status["workers"] == []
        live.stop_live()

    def test_worker_task_publishes_heartbeats(self, tmp_path):
        hb_dir = tmp_path / "heartbeats"
        hb_dir.mkdir()
        task = WorkerTask(_double, heartbeat_dir=str(hb_dir))
        # Pretend this process is a pool worker, not the parent.
        task.parent_pid = -1
        result, payload = task(21)
        assert result == 42
        assert payload is not None
        beat = json.loads(
            (hb_dir / f"hb-{os.getpid()}.json").read_text()
        )
        assert beat["pid"] == os.getpid()
        assert beat["in_flight"] is False
        assert beat["items_done"] >= 1

    def test_worker_task_parent_process_skips_heartbeat(self, tmp_path):
        hb_dir = tmp_path / "heartbeats"
        hb_dir.mkdir()
        task = WorkerTask(_double, heartbeat_dir=str(hb_dir))
        result, payload = task(2)
        assert (result, payload) == (4, None)
        assert list(hb_dir.glob("hb-*.json")) == []

    def test_heartbeat_dir_active_only_while_live(self, tmp_path):
        assert live.heartbeat_dir() is None
        live.start_live(tmp_path, flush_ms=10_000)
        assert live.heartbeat_dir() == str(tmp_path / "heartbeats")
        live.stop_live()
        assert live.heartbeat_dir() is None


class TestTailCli:
    def test_tail_once_missing_dir_exits_1(self, tmp_path, capsys):
        assert obs_main(["tail", str(tmp_path / "nope"), "--once"]) == 1
        assert "no readable status.json" in capsys.readouterr().err

    def test_tail_once_renders_progress(self, tmp_path, capsys):
        live.start_live(tmp_path, flush_ms=10_000)
        live.update_progress(
            phase="campaign", unit="cells", total=8, done=2,
            quarantined=1, retries=0,
        )
        live.stop_live()
        assert obs_main(["tail", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "phase campaign" in out
        assert "2/8" in out
        assert "quarantined 1" in out
        assert "ETA" in out

    def test_tail_once_json_is_raw_status(self, tmp_path, capsys):
        live.start_live(tmp_path, flush_ms=10_000)
        live.stop_live()
        assert obs_main(["tail", str(tmp_path), "--once", "--json"]) == 0
        frame = json.loads(capsys.readouterr().out)
        assert frame["pid"] == os.getpid()
        assert frame["final"] is True

    def test_tail_shows_workers_and_counters(self, tmp_path, capsys):
        flusher = live.start_live(tmp_path, flush_ms=10_000)
        trace.counter("campaign.cells_completed").inc(3)
        hb = tmp_path / "heartbeats"
        (hb / f"hb-{os.getpid()}.json").write_text(
            json.dumps(
                {
                    "pid": os.getpid(),
                    "updated": time.time(),
                    "in_flight": True,
                    "item": "cell-abc",
                    "items_done": 2,
                }
            )
        )
        flusher.flush_once()
        live.stop_live()
        # stop_live rewrites status without the heartbeat dir untouched;
        # the heartbeat file is still present, so workers render.
        assert obs_main(["tail", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "campaign.cells_completed" in out
        assert f"pid {os.getpid()}" in out


class TestCampaignLiveIntegration:
    def test_run_campaign_reports_progress(self, tmp_path):
        from repro.experiments.campaign import (
            CampaignConfig,
            default_grid,
            run_campaign,
        )

        live.start_live(tmp_path / "live", flush_ms=10_000)
        result = run_campaign(
            CampaignConfig(
                spec=default_grid("smoke"), evaluator="synthetic", n_jobs=1
            )
        )
        live.stop_live()
        status = live.load_status(tmp_path / "live")
        progress = status["progress"]
        n_cells = result.report["coverage"]["n_cells"]
        assert progress["phase"] == "campaign"
        assert progress["total"] == n_cells
        assert progress["done"] == n_cells
        assert progress["pct"] == 100.0
        assert status["counters"]["campaign.cells_completed"] == n_cells
        assert status["gauges"]["campaign.cells_total"] == float(n_cells)
