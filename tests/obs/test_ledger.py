"""The run ledger: recording, addressing, diffing, concurrency, CLI."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import ledger, trace
from repro.obs.__main__ import main as obs_main
from repro.obs.trace import Collector


@pytest.fixture
def runs_dir(tmp_path, monkeypatch):
    directory = tmp_path / "runs"
    monkeypatch.setenv("REPRO_LEDGER", "1")
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(directory))
    return directory


def _record_with_obs(entry, span_ms, counter_n=5, **kwargs):
    """A ledger record whose obs summary has one span at ``span_ms``."""
    collector = trace.activate(Collector())
    collector.record(
        trace.SpanRecord(
            path="cwt.batch",
            name="cwt.batch",
            start=0.0,
            wall_ms=span_ms,
            cpu_ms=span_ms,
            self_ms=span_ms,
        )
    )
    collector.metrics.counter("parallel.items").inc(counter_n)
    record = ledger.record_run(entry, **kwargs)
    trace.deactivate()
    return record


class TestRecordRun:
    def test_round_trip(self, runs_dir):
        record = ledger.record_run(
            "campaign",
            status="ok",
            duration_s=12.5,
            extra={"scale": "smoke"},
        )
        assert record is not None
        assert len(record["run_id"]) == 12
        (read,) = ledger.read_ledger()
        assert read == record
        assert read["entry"] == "campaign"
        assert read["duration_s"] == 12.5
        assert read["extra"] == {"scale": "smoke"}
        assert read["pid"] == os.getpid()
        assert read["git_rev"]  # "unknown" at worst, never empty

    def test_disabled_by_knob(self, runs_dir, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert ledger.record_run("campaign") is None
        assert not ledger.ledger_path().exists()

    def test_knob_snapshot_captured(self, runs_dir, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_RETRIES", "7")
        record = ledger.record_run("campaign")
        assert record["knobs"]["REPRO_CAMPAIGN_RETRIES"] == "7"
        # Unset knobs don't appear: the snapshot is what *this* run set.
        assert "REPRO_CAMPAIGN_CHAOS" not in record["knobs"]

    def test_obs_summary_attached_when_enabled(self, runs_dir):
        record = _record_with_obs("experiment.endtoend", span_ms=40.0)
        assert record["obs"]["n_spans"] == 1
        (row,) = record["obs"]["top_self_ms"]
        assert row["path"] == "cwt.batch"
        assert row["self_ms"] == 40.0

    def test_no_obs_key_when_disabled(self, runs_dir):
        record = ledger.record_run("campaign")
        assert "obs" not in record

    def test_bench_numbers_rounded_and_sorted(self, runs_dir):
        record = ledger.record_run(
            "bench.throughput",
            bench={"b_second": 2.00006, "a_first": 1.0},
        )
        assert list(record["bench"]) == ["a_first", "b_second"]
        assert record["bench"]["b_second"] == 2.0001

    def test_run_ids_unique_within_process(self, runs_dir):
        ids = {ledger.record_run("campaign")["run_id"] for _ in range(20)}
        assert len(ids) == 20

    def test_unwritable_dir_degrades_to_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "1")
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        monkeypatch.setenv(
            "REPRO_LEDGER_DIR", str(blocked / "sub")
        )
        assert ledger.record_run("campaign") is None


class TestReadLedger:
    def test_missing_file_is_empty(self, runs_dir):
        assert ledger.read_ledger() == []

    def test_torn_final_line_skipped(self, runs_dir):
        ledger.record_run("campaign")
        ledger.record_run("campaign")
        path = ledger.ledger_path()
        path.write_bytes(path.read_bytes() + b'{"run_id": "abc')
        assert len(ledger.read_ledger()) == 2

    def test_concurrent_appends_stay_line_atomic(self, runs_dir):
        """4 processes x 50 appends: every line parses, none splice."""
        script = (
            "import sys\n"
            "from repro.obs import ledger\n"
            "for i in range(50):\n"
            "    ledger.record_run('campaign', extra={'proc': sys.argv[1],"
            " 'i': i, 'pad': 'x' * 400})\n"
        )
        env = dict(os.environ)  # replint: disable=REP001 -- passed through to a subprocess verbatim, no knob is read
        env.update(
            PYTHONPATH="src",
            REPRO_LEDGER="1",
            REPRO_LEDGER_DIR=str(runs_dir),
        )
        repo_root = Path(__file__).resolve().parents[2]
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(n)],
                cwd=repo_root,
                env=env,
            )
            for n in range(4)
        ]
        assert [proc.wait(timeout=120) for proc in procs] == [0, 0, 0, 0]
        records = ledger.read_ledger()
        assert len(records) == 200
        raw_lines = ledger.ledger_path().read_text().splitlines()
        assert len(raw_lines) == 200  # no spliced/torn lines at all
        seen = {
            (record["extra"]["proc"], record["extra"]["i"])
            for record in records
        }
        assert len(seen) == 200


class TestResolveRun:
    def _three(self):
        return [
            {"run_id": "aaa111111111", "entry": "campaign"},
            {"run_id": "aab222222222", "entry": "campaign"},
            {"run_id": "ccc333333333", "entry": "bench.throughput"},
        ]

    def test_last_and_relative(self):
        records = self._three()
        assert ledger.resolve_run(records, "last")["run_id"] == "ccc333333333"
        assert (
            ledger.resolve_run(records, "last~1")["run_id"] == "aab222222222"
        )
        assert (
            ledger.resolve_run(records, "last~2")["run_id"] == "aaa111111111"
        )

    def test_unique_prefix(self):
        assert (
            ledger.resolve_run(self._three(), "ccc")["run_id"]
            == "ccc333333333"
        )

    def test_ambiguous_prefix_rejected(self):
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.resolve_run(self._three(), "aa")

    def test_unknown_ref_rejected(self):
        with pytest.raises(ValueError, match="no run matches"):
            ledger.resolve_run(self._three(), "zzzz")
        with pytest.raises(ValueError, match="out of range"):
            ledger.resolve_run(self._three(), "last~9")
        with pytest.raises(ValueError, match="empty"):
            ledger.resolve_run([], "last")


class TestDiffRuns:
    def _pair(self, old_ms, new_ms):
        old = {
            "run_id": "a" * 12,
            "obs": {
                "top_self_ms": [
                    {"path": "cwt.batch", "self_ms": old_ms, "calls": 3}
                ],
                "counters": {"parallel.items": 10},
            },
        }
        new = {
            "run_id": "b" * 12,
            "obs": {
                "top_self_ms": [
                    {"path": "cwt.batch", "self_ms": new_ms, "calls": 3}
                ],
                "counters": {"parallel.items": 14},
            },
        }
        return old, new

    def test_span_regression_beyond_threshold_flagged(self):
        old, new = self._pair(100.0, 125.0)
        result = ledger.diff_runs(old, new, threshold_pct=20.0)
        (regression,) = result["regressions"]
        assert regression["name"] == "cwt.batch"
        assert regression["pct"] == 25.0
        assert result["improvements"] == []

    def test_below_threshold_not_flagged(self):
        old, new = self._pair(100.0, 115.0)
        result = ledger.diff_runs(old, new, threshold_pct=20.0)
        assert result["regressions"] == []
        # ... but the row is still reported for inspection.
        assert any(row["name"] == "cwt.batch" for row in result["rows"])

    def test_improvement_is_not_a_regression(self):
        old, new = self._pair(100.0, 50.0)
        result = ledger.diff_runs(old, new, threshold_pct=20.0)
        assert result["regressions"] == []
        (improvement,) = result["improvements"]
        assert improvement["pct"] == -50.0

    def test_submillisecond_spans_skipped(self):
        old, new = self._pair(0.2, 0.9)  # +350 %, but noise territory
        result = ledger.diff_runs(old, new, threshold_pct=20.0)
        assert not any(row["kind"] == "span" for row in result["rows"])

    def test_counters_reported_never_gated(self):
        old, new = self._pair(100.0, 100.0)
        result = ledger.diff_runs(old, new, threshold_pct=20.0)
        (counter_row,) = [
            row for row in result["rows"] if row["kind"] == "counter"
        ]
        assert counter_row["name"] == "parallel.items"
        assert counter_row["pct"] == 40.0
        assert counter_row["flagged"] is False

    def test_bench_numbers_gated(self):
        old = {"run_id": "a" * 12, "bench": {"test_cwt": 10.0}}
        new = {"run_id": "b" * 12, "bench": {"test_cwt": 13.0}}
        result = ledger.diff_runs(old, new, threshold_pct=20.0)
        (regression,) = result["regressions"]
        assert regression["kind"] == "bench"
        assert regression["pct"] == 30.0

    def test_threshold_defaults_to_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIFF_PCT", "50")
        old, new = self._pair(100.0, 140.0)
        result = ledger.diff_runs(old, new)
        assert result["threshold_pct"] == 50.0
        assert result["regressions"] == []


class TestLedgerCli:
    def test_runs_lists_and_filters(self, runs_dir, capsys):
        ledger.record_run("campaign", duration_s=1.0)
        ledger.record_run("bench.throughput", duration_s=2.0)
        assert obs_main(["runs", "--dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out and "bench.throughput" in out
        assert (
            obs_main(
                ["runs", "--dir", str(runs_dir), "--entry", "campaign"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "campaign" in out and "bench.throughput" not in out

    def test_runs_json_emits_records(self, runs_dir, capsys):
        ledger.record_run("campaign")
        assert obs_main(["runs", "--dir", str(runs_dir), "--json"]) == 0
        (line,) = capsys.readouterr().out.strip().splitlines()
        assert json.loads(line)["entry"] == "campaign"

    def test_diff_exit_1_on_regression(self, runs_dir, capsys):
        _record_with_obs("experiment.endtoend", span_ms=100.0)
        _record_with_obs("experiment.endtoend", span_ms=125.0)
        code = obs_main(
            [
                "diff", "last~1", "last",
                "--dir", str(runs_dir),
                "--threshold-pct", "20",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSION" in captured.out
        assert "regression(s)" in captured.err

    def test_diff_exit_0_below_threshold(self, runs_dir, capsys):
        _record_with_obs("experiment.endtoend", span_ms=100.0)
        _record_with_obs("experiment.endtoend", span_ms=110.0)
        code = obs_main(
            [
                "diff", "last~1", "last",
                "--dir", str(runs_dir),
                "--threshold-pct", "20",
            ]
        )
        assert code == 0

    def test_diff_bad_ref_exit_2(self, runs_dir, capsys):
        ledger.record_run("campaign")
        code = obs_main(
            ["diff", "zzzz", "last", "--dir", str(runs_dir)]
        )
        assert code == 2
        assert "no run matches" in capsys.readouterr().err

    def test_diff_json_document(self, runs_dir, capsys):
        _record_with_obs("experiment.endtoend", span_ms=100.0)
        _record_with_obs("experiment.endtoend", span_ms=300.0)
        code = obs_main(
            [
                "diff", "last~1", "last",
                "--dir", str(runs_dir),
                "--json",
            ]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["threshold_pct"] == 20.0
        assert document["regressions"][0]["name"] == "cwt.batch"
