"""JSONL sinks and the report tool: write → load → validate → render."""

import json

import pytest

from repro.obs import __main__ as obs_cli
from repro.obs.report import (
    load,
    load_many,
    render_json,
    render_text,
    validate,
)
from repro.obs.sinks import derive_rates, maybe_export, summarize, write_jsonl
from repro.obs.trace import Collector, activate, span


def _traced_collector():
    """A collector with a small span tree and a few metrics."""
    collector = activate(Collector())
    with span("experiment.demo"):
        with span("cwt.batch", n=64):
            pass
        with span("cwt.batch", n=64):
            pass
        with span("train.level"):
            pass
    collector.metrics.counter("trace_cache.hits").inc(3)
    collector.metrics.counter("trace_cache.misses").inc(1)
    collector.metrics.gauge("parallel.worker_utilization").set(0.75)
    collector.metrics.histogram("parallel.task_ms").observe(2.0)
    return collector


class TestJsonlRoundtrip:
    def test_write_load_validate(self, tmp_path):
        collector = _traced_collector()
        path = str(tmp_path / "run.jsonl")
        n_lines = write_jsonl(collector, path)
        # meta + 4 spans + 4 metrics
        assert n_lines == 9
        assert validate(path) == []
        report = load(path)
        assert report.n_spans == 4
        assert report.paths["experiment.demo/cwt.batch"].calls == 2
        assert report.metrics["trace_cache.hits"]["value"] == 3
        assert report.rates()["trace_cache.hit_rate"] == 0.75

    def test_torn_final_line_tolerated(self, tmp_path):
        collector = _traced_collector()
        path = str(tmp_path / "run.jsonl")
        write_jsonl(collector, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "path": "torn')  # crashed writer
        report = load(path)
        assert report.n_spans == 4  # the torn line is dropped, not fatal
        # validate still flags the meta/span count mismatch? No: the torn
        # line never counted, so the file stays consistent.
        assert validate(path) == []

    def test_torn_middle_line_is_corruption(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"type": "span", "broken\n')
            handle.write(
                json.dumps(
                    {
                        "type": "span",
                        "path": "a",
                        "name": "a",
                        "start": 0.0,
                        "wall_ms": 1.0,
                        "self_ms": 1.0,
                        "cpu_ms": 0.5,
                        "pid": 1,
                    }
                )
                + "\n"
            )
        with pytest.raises(ValueError, match="invalid JSON"):
            load(path)

    def test_validate_reports_problems_without_raising(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"type": "meta", "format": 1, "n_spans": 5}) + "\n"
            )
        problems = validate(path)
        assert any("no spans" in p for p in problems)

    def test_span_missing_key_raises(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "span", "path": "x"}) + "\n")
        with pytest.raises(ValueError, match="missing"):
            load(path)


class TestRendering:
    def test_text_report_shows_tree_and_metrics(self, tmp_path):
        collector = _traced_collector()
        path = str(tmp_path / "run.jsonl")
        write_jsonl(collector, path)
        text = render_text(load(path))
        assert "experiment.demo" in text
        assert "  cwt.batch" in text  # indented child
        assert "trace_cache.hits" in text
        assert "trace_cache.hit_rate" in text
        assert "75.00%" in text

    def test_error_spans_are_marked(self, tmp_path):
        collector = activate(Collector())
        with pytest.raises(RuntimeError):
            with span("broken"):
                raise RuntimeError("x")
        path = str(tmp_path / "run.jsonl")
        write_jsonl(collector, path)
        assert "[!1]" in render_text(load(path))

    def test_json_report_is_machine_readable(self, tmp_path):
        collector = _traced_collector()
        path = str(tmp_path / "run.jsonl")
        write_jsonl(collector, path)
        payload = json.loads(render_json(load(path)))
        assert payload["meta"]["n_spans"] == 4
        paths = [s["path"] for s in payload["spans"]]
        assert paths[0] == "experiment.demo"  # root first, depth-first
        assert payload["rates"]["parallel.worker_utilization"] == 0.75


class TestSummaries:
    def test_summarize_top_paths_and_rates(self):
        collector = _traced_collector()
        summary = summarize(collector, top=2)
        assert summary["n_spans"] == 4
        assert len(summary["top_self_ms"]) == 2
        assert summary["counters"]["trace_cache.hits"] == 3
        assert summary["rates"]["trace_cache.hit_rate"] == 0.75

    def test_derive_rates_skips_degenerate_pairs(self):
        rates = derive_rates(
            {
                "a.hits": {"kind": "counter", "value": 0},
                "a.misses": {"kind": "counter", "value": 0},
            }
        )
        assert rates == {}

    def test_maybe_export_none_when_disabled(self, tmp_path):
        assert maybe_export(str(tmp_path / "x.jsonl")) is None
        assert not (tmp_path / "x.jsonl").exists()

    def test_maybe_export_writes_and_summarizes(self, tmp_path):
        _traced_collector()
        path = tmp_path / "run.jsonl"
        summary = maybe_export(str(path))
        assert path.exists()
        assert summary["n_spans"] == 4


class TestCli:
    def test_report_text(self, tmp_path, capsys):
        collector = _traced_collector()
        path = str(tmp_path / "run.jsonl")
        write_jsonl(collector, path)
        assert obs_cli.main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "experiment.demo" in out

    def test_report_json(self, tmp_path, capsys):
        collector = _traced_collector()
        path = str(tmp_path / "run.jsonl")
        write_jsonl(collector, path)
        assert obs_cli.main(["report", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["n_spans"] == 4

    def test_check_valid_trace(self, tmp_path, capsys):
        collector = _traced_collector()
        path = str(tmp_path / "run.jsonl")
        write_jsonl(collector, path)
        assert obs_cli.main(["report", path, "--check"]) == 0
        assert "OK" in capsys.readouterr().err

    def test_check_invalid_trace(self, tmp_path, capsys):
        path = str(tmp_path / "empty.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "meta", "n_spans": 0}) + "\n")
        assert obs_cli.main(["report", path, "--check"]) == 1
        assert "ERROR" in capsys.readouterr().err


class TestLoadMany:
    def _write_two(self, tmp_path):
        from repro.obs.trace import deactivate

        paths = []
        for index in range(2):
            collector = _traced_collector()
            path = str(tmp_path / f"shard-{index}.jsonl")
            write_jsonl(collector, path)
            deactivate()
            paths.append(path)
        return paths

    def test_merge_sums_paths_and_counters(self, tmp_path):
        paths = self._write_two(tmp_path)
        merged = load_many(paths)
        assert merged.n_spans == 8
        assert merged.paths["experiment.demo/cwt.batch"].calls == 4
        assert merged.metrics["trace_cache.hits"]["value"] == 6
        assert merged.metrics["parallel.task_ms"]["count"] == 2
        assert merged.meta["merged"] == 2
        assert merged.meta["n_spans"] == 8

    def test_gauge_takes_last_file(self, tmp_path):
        paths = self._write_two(tmp_path)
        second = json.loads(
            open(paths[1]).readlines()[-2]
        )  # gauge line of file 2
        merged = load_many(paths)
        util = merged.metrics["parallel.worker_utilization"]["value"]
        assert util == 0.75
        assert second is not None  # sanity: file 2 parsed

    def test_duration_is_max_not_sum(self, tmp_path):
        paths = self._write_two(tmp_path)
        for index, path in enumerate(paths):
            lines = open(path).read().splitlines()
            meta = json.loads(lines[0])
            meta["duration_s"] = 10.0 * (index + 1)
            lines[0] = json.dumps(meta)
            open(path, "w").write("\n".join(lines) + "\n")
        merged = load_many(paths)
        assert merged.meta["duration_s"] == 20.0

    def test_single_path_is_plain_load(self, tmp_path):
        (path,) = [self._write_two(tmp_path)[0]]
        merged = load_many([path])
        assert merged.meta.get("merged") is None
        assert merged.n_spans == 4

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            load_many([])


class TestCliMultiTrace:
    def test_report_merges_multiple_files(self, tmp_path, capsys):
        from repro.obs.trace import deactivate

        for index in range(2):
            write_jsonl(
                _traced_collector(), str(tmp_path / f"s{index}.jsonl")
            )
            deactivate()
        code = obs_cli.main(
            [
                "report",
                str(tmp_path / "s0.jsonl"),
                str(tmp_path / "s1.jsonl"),
            ]
        )
        assert code == 0
        assert "8 spans" in capsys.readouterr().out

    def test_report_expands_globs(self, tmp_path, capsys):
        from repro.obs.trace import deactivate

        for index in range(3):
            write_jsonl(
                _traced_collector(), str(tmp_path / f"s{index}.jsonl")
            )
            deactivate()
        code = obs_cli.main(["report", str(tmp_path / "s*.jsonl")])
        assert code == 0
        assert "12 spans" in capsys.readouterr().out

    def test_check_validates_every_file(self, tmp_path, capsys):
        from repro.obs.trace import deactivate

        good = str(tmp_path / "good.jsonl")
        write_jsonl(_traced_collector(), good)
        deactivate()
        bad = str(tmp_path / "bad.jsonl")
        open(bad, "w").write("not json at all\n{}\n")
        code = obs_cli.main(["report", good, bad, "--check"])
        err = capsys.readouterr().err
        assert code == 1
        assert "OK: " + good in err
        assert "ERROR" in err
