"""Metrics primitives: deterministic bucketing, merge, registry checks."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter().inc(-1)

    def test_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(2)
        b.inc(3)
        a.merge(b.as_dict())
        assert a.value == 5


class TestGauge:
    def test_set_last_write_wins(self):
        g = Gauge()
        g.set(1.5)
        g.set(0.25)
        assert g.value == 0.25

    def test_merge_takes_incoming(self):
        a, b = Gauge(), Gauge()
        a.set(0.1)
        b.set(0.9)
        a.merge(b.as_dict())
        assert a.value == 0.9


class TestHistogram:
    def test_deterministic_bucketing(self):
        h = Histogram(edges=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 10.0, 50.0, 500.0):
            h.observe(value)
        # Edge-equal observations land *below* the edge; one overflow.
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.total == pytest.approx(566.5)

    def test_default_edges_are_fixed(self):
        h = Histogram()
        assert h.edges == DEFAULT_BUCKETS_MS
        assert len(h.counts) == len(DEFAULT_BUCKETS_MS) + 1

    def test_mean(self):
        h = Histogram(edges=(1.0,))
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == pytest.approx(3.0)

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram(edges=(10.0, 1.0))

    def test_empty_edges_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram(edges=())

    def test_merge_sums_buckets(self):
        a = Histogram(edges=(1.0, 10.0))
        b = Histogram(edges=(1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(50.0)
        a.merge(b.as_dict())
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.total == pytest.approx(55.5)

    def test_merge_edge_mismatch_raises(self):
        a = Histogram(edges=(1.0,))
        b = Histogram(edges=(2.0,))
        with pytest.raises(ValueError, match="edge mismatch"):
            a.merge(b.as_dict())


class TestRegistry:
    def test_lazy_creation_and_reuse(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="counter"):
            reg.gauge("a")

    def test_histogram_redeclare_with_other_edges_raises(self):
        reg = MetricsRegistry()
        reg.histogram("lat", edges=(1.0, 2.0))
        reg.histogram("lat")  # no edges: fine, reuses
        with pytest.raises(ValueError, match="already exists"):
            reg.histogram("lat", edges=(5.0,))

    def test_snapshot_is_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zeta").inc()
        reg.counter("alpha").inc()
        assert list(reg.snapshot()) == ["alpha", "zeta"]

    def test_merge_snapshot_roundtrip(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("hits").inc(7)
        b.gauge("util").set(0.5)
        b.histogram("lat", edges=(1.0,)).observe(0.5)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["hits"]["value"] == 7
        assert snap["util"]["value"] == 0.5
        assert snap["lat"]["counts"] == [1, 0]

    def test_merge_snapshot_unknown_kind_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown kind"):
            reg.merge_snapshot({"x": {"kind": "what", "value": 1}})
