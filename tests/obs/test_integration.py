"""Obs wired into the pipeline: pools, caches, and the --trace CLI flag."""

import numpy as np

from repro.dsp.cwt import clear_cwt_cache, get_cwt
from repro.experiments.__main__ import main as experiments_main
from repro.obs.report import load, validate
from repro.obs.trace import Collector, activate, span
from repro.power import Acquisition
from repro.power.cache import TraceCache
from repro.util.parallel import parallel_map


def _traced_square(x):
    """Module-level (picklable) work fn that opens a span per item."""
    with span("item.work", x=x):
        return x * x


class TestParallelMerge:
    def test_worker_spans_merge_under_parallel_map(self):
        collector = activate(Collector())
        with span("capture.class"):
            result = parallel_map(_traced_square, range(8), n_jobs=2)
        assert result == [x * x for x in range(8)]
        paths = {s.path for s in collector.spans}
        assert "capture.class" in paths
        assert "capture.class/parallel.map" in paths
        # Worker-side spans re-root under the launching span's path.
        assert "capture.class/parallel.map/item.work" in paths
        worker_pids = {
            s.pid
            for s in collector.spans
            if s.path.endswith("item.work")
        }
        parent_pid = next(
            s.pid for s in collector.spans if s.path == "capture.class"
        )
        assert worker_pids and parent_pid not in worker_pids

    def test_pool_metrics_published(self):
        collector = activate(Collector())
        parallel_map(_traced_square, range(8), n_jobs=2)
        snap = collector.metrics.snapshot()
        assert snap["parallel.items"]["value"] == 8
        assert snap["parallel.task_ms"]["count"] == 8
        assert 0.0 <= snap["parallel.worker_utilization"]["value"] <= 1.0

    def test_results_identical_to_disabled_path(self):
        disabled = parallel_map(_traced_square, range(8), n_jobs=2)
        activate(Collector())
        enabled_run = parallel_map(_traced_square, range(8), n_jobs=2)
        assert enabled_run == disabled

    def test_serial_path_untouched_by_obs(self):
        collector = activate(Collector())
        result = parallel_map(_traced_square, range(4), n_jobs=1)
        assert result == [x * x for x in range(4)]
        # Serial path: the item spans record directly, no parallel.map.
        assert all("parallel.map" not in s.path for s in collector.spans)


class TestCacheCounters:
    def test_trace_cache_stats_and_meta(self, tmp_path):
        collector = activate(Collector())
        cache = TraceCache(tmp_path)
        key = {"classes": ["NOP"], "n": 4, "seed": 3}

        def capture():
            return Acquisition(seed=3).capture_instruction_set(["NOP"], 4, 2)

        first = cache.get_or_capture(key, capture)
        second = cache.get_or_capture(key, capture)
        assert first.meta["trace_cache"] == {"hit": False}
        assert second.meta["trace_cache"] == {"hit": True}
        assert cache.stats == {"hits": 1, "misses": 1, "evictions": 0}
        assert cache.clear() == 1
        assert cache.stats["evictions"] == 1
        snap = collector.metrics.snapshot()
        assert snap["trace_cache.hits"]["value"] == 1
        assert snap["trace_cache.misses"]["value"] == 1
        assert snap["trace_cache.evictions"]["value"] == 1

    def test_trace_cache_stats_track_without_obs(self, tmp_path):
        # The dict on the instance counts even when tracing is disabled.
        cache = TraceCache(tmp_path)
        cache.get_or_capture(
            {"n": 4},
            lambda: Acquisition(seed=1).capture_instruction_set(["NOP"], 4, 2),
        )
        assert cache.stats["misses"] == 1

    def test_cwt_op_cache_counters(self):
        collector = activate(Collector())
        clear_cwt_cache()
        get_cwt(64)
        get_cwt(64)
        get_cwt(96)
        snap = collector.metrics.snapshot()
        assert snap["cwt.op_cache.misses"]["value"] == 2
        assert snap["cwt.op_cache.hits"]["value"] == 1


class TestCliTrace:
    def test_trace_flag_writes_valid_jsonl(self, tmp_path, capsys):
        trace_path = str(tmp_path / "run.jsonl")
        assert experiments_main(["table2", "--trace", trace_path]) == 0
        captured = capsys.readouterr()
        assert "Table 2" in captured.out
        assert "trace written to" in captured.err
        assert validate(trace_path) == []
        report = load(trace_path)
        assert "experiment.table2" in report.paths

    def test_cwt_spans_reach_the_trace(self, tmp_path):
        collector = activate(Collector())
        traces = np.random.default_rng(0).normal(size=(4, 64)).astype(np.float32)
        get_cwt(64).transform(traces)
        assert any(s.name == "cwt.batch" for s in collector.spans)
