"""Shared obs fixtures: every test starts and ends with obs disabled."""

import pytest

from repro.obs import live, log, trace


@pytest.fixture(autouse=True)
def _clean_obs_state(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.delenv("REPRO_OBS_MEM", raising=False)
    monkeypatch.delenv("REPRO_OBS_LIVE_DIR", raising=False)
    monkeypatch.delenv("REPRO_OBS_FLUSH_MS", raising=False)
    trace.reset()
    log.reset_level()
    log.reset_suppressed()
    yield
    live.stop_live()
    trace.reset()
    log.reset_level()
    log.reset_suppressed()
