"""Shared obs fixtures: every test starts and ends with obs disabled."""

import pytest

from repro.obs import log, trace


@pytest.fixture(autouse=True)
def _clean_obs_state(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.delenv("REPRO_OBS_MEM", raising=False)
    trace.reset()
    log.reset_level()
    yield
    trace.reset()
    log.reset_level()
