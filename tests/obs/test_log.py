"""The level-gated stderr logger."""

import pytest

from repro.obs import log


class TestLog:
    def test_default_level_is_info(self, capsys):
        log.debug("hidden")
        log.info("shown")
        err = capsys.readouterr().err
        assert "hidden" not in err
        assert "[info] shown" in err

    def test_messages_go_to_stderr_not_stdout(self, capsys):
        log.warning("careful")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "[warning] careful" in captured.err

    def test_set_level_filters(self, capsys):
        log.set_level("error")
        log.warning("dropped")
        log.error("kept")
        err = capsys.readouterr().err
        assert "dropped" not in err
        assert "[error] kept" in err

    def test_off_silences_everything(self, capsys):
        log.set_level("off")
        log.error("nothing")
        assert capsys.readouterr().err == ""

    def test_knob_sets_threshold(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_OBS_LOG_LEVEL", "debug")
        log.reset_level()
        log.debug("verbose")
        assert "[debug] verbose" in capsys.readouterr().err

    def test_cannot_log_at_off(self):
        with pytest.raises(ValueError, match="off"):
            log.log("off", "x")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            log.log("loud", "x")
        with pytest.raises(ValueError, match="unknown log level"):
            log.set_level("loud")


class TestKeyedRateLimit:
    def test_first_keyed_message_prints_repeats_suppressed(self, capsys):
        log.warning("cell a quarantined", key="campaign.quarantine")
        log.warning("cell b quarantined", key="campaign.quarantine")
        log.warning("cell c quarantined", key="campaign.quarantine")
        err = capsys.readouterr().err
        assert "cell a quarantined" in err
        assert "cell b" not in err
        assert "cell c" not in err

    def test_flush_emits_one_summary_per_key(self, capsys):
        log.warning("w0", key="k.one")
        log.warning("w1", key="k.one")
        log.warning("w2", key="k.one")
        log.error("e0", key="k.two")
        log.error("e1", key="k.two")
        total = log.flush_suppressed()
        assert total == 3
        err = capsys.readouterr().err
        assert "[warning] (+2 similar suppressed: k.one)" in err
        assert "[error] (+1 similar suppressed: k.two)" in err

    def test_flush_resets_state(self, capsys):
        log.warning("first", key="k")
        log.warning("again", key="k")
        log.flush_suppressed()
        capsys.readouterr()
        log.warning("fresh start", key="k")
        assert "fresh start" in capsys.readouterr().err
        assert log.flush_suppressed() == 0

    def test_no_summary_when_nothing_suppressed(self, capsys):
        log.warning("only once", key="k")
        capsys.readouterr()
        assert log.flush_suppressed() == 0
        assert capsys.readouterr().err == ""

    def test_unkeyed_messages_never_suppressed(self, capsys):
        log.warning("same text")
        log.warning("same text")
        assert capsys.readouterr().err.count("same text") == 2

    def test_same_key_different_levels_independent(self, capsys):
        log.warning("warn form", key="k")
        log.error("error form", key="k")
        err = capsys.readouterr().err
        assert "warn form" in err
        assert "error form" in err

    def test_messages_below_threshold_not_counted(self, capsys):
        log.set_level("error")
        log.warning("dropped", key="k")
        log.warning("dropped again", key="k")
        assert log.flush_suppressed() == 0
        assert "dropped" not in capsys.readouterr().err
