"""The level-gated stderr logger."""

import pytest

from repro.obs import log


class TestLog:
    def test_default_level_is_info(self, capsys):
        log.debug("hidden")
        log.info("shown")
        err = capsys.readouterr().err
        assert "hidden" not in err
        assert "[info] shown" in err

    def test_messages_go_to_stderr_not_stdout(self, capsys):
        log.warning("careful")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "[warning] careful" in captured.err

    def test_set_level_filters(self, capsys):
        log.set_level("error")
        log.warning("dropped")
        log.error("kept")
        err = capsys.readouterr().err
        assert "dropped" not in err
        assert "[error] kept" in err

    def test_off_silences_everything(self, capsys):
        log.set_level("off")
        log.error("nothing")
        assert capsys.readouterr().err == ""

    def test_knob_sets_threshold(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_OBS_LOG_LEVEL", "debug")
        log.reset_level()
        log.debug("verbose")
        assert "[debug] verbose" in capsys.readouterr().err

    def test_cannot_log_at_off(self):
        with pytest.raises(ValueError, match="off"):
            log.log("off", "x")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            log.log("loud", "x")
        with pytest.raises(ValueError, match="unknown log level"):
            log.set_level("loud")
