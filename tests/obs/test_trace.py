"""Span tracer: nesting, self time, exceptions, no-op path, merging."""

import threading

import pytest

from repro.obs import trace
from repro.obs.trace import (
    Collector,
    activate,
    active_collector,
    counter,
    deactivate,
    enabled,
    gauge,
    histogram,
    span,
    traced,
)


class TestDisabled:
    def test_disabled_by_default(self):
        assert not enabled()
        assert active_collector() is None

    def test_span_returns_shared_null_singleton(self):
        first = span("a")
        second = span("b", n=3)
        assert first is second  # the shared no-op, no allocation per call

    def test_null_span_is_a_context_manager(self):
        with span("a") as s:
            assert s is not None

    def test_null_span_propagates_exceptions(self):
        with pytest.raises(ValueError):
            with span("a"):
                raise ValueError("boom")

    def test_metric_helpers_return_shared_noop(self):
        assert counter("x") is gauge("y") is histogram("z")
        counter("x").inc(5)
        gauge("y").set(1.0)
        histogram("z").observe(2.0)  # none of these raise or record

    def test_env_knob_auto_activates(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        trace.reset()
        assert enabled()
        assert active_collector() is not None


class TestSpans:
    def test_nested_paths(self):
        collector = activate(Collector())
        with span("outer"):
            with span("inner"):
                pass
        paths = [s.path for s in collector.spans]
        assert paths == ["outer/inner", "outer"]  # children close first

    def test_self_time_excludes_children(self):
        collector = activate(Collector())
        with span("outer"):
            with span("inner"):
                pass
        by_name = {s.name: s for s in collector.spans}
        outer = by_name["outer"]
        assert outer.self_ms <= outer.wall_ms
        assert outer.self_ms == pytest.approx(
            outer.wall_ms - by_name["inner"].wall_ms, abs=1e-6
        )

    def test_attrs_ride_along(self):
        collector = activate(Collector())
        with span("cwt.batch", n=128, n_scales=50):
            pass
        assert collector.spans[0].attrs == {"n": 128, "n_scales": 50}

    def test_exception_recorded_and_propagated(self):
        collector = activate(Collector())
        with pytest.raises(KeyError):
            with span("risky"):
                raise KeyError("missing")
        record = collector.spans[0]
        assert record.error == "KeyError"
        assert record.wall_ms >= 0.0

    def test_sibling_spans_share_parent_path(self):
        collector = activate(Collector())
        with span("root"):
            with span("a"):
                pass
            with span("b"):
                pass
        paths = sorted(s.path for s in collector.spans)
        assert paths == ["root", "root/a", "root/b"]

    def test_per_thread_stacks(self):
        collector = activate(Collector())
        done = threading.Event()

        def worker():
            with span("thread.child"):
                pass
            done.set()

        with span("main.parent"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert done.is_set()
        paths = {s.path for s in collector.spans}
        # The other thread's span is a root: stacks are thread-local.
        assert paths == {"main.parent", "thread.child"}

    def test_max_spans_cap_counts_drops(self):
        collector = activate(Collector(max_spans=2))
        for i in range(5):
            with span(f"s{i}"):
                pass
        assert len(collector.spans) == 2
        assert collector.metrics.counter("obs.spans_dropped").value == 3

    def test_traced_decorator(self):
        collector = activate(Collector())

        @traced("math.double", kind="test")
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert collector.spans[0].name == "math.double"
        assert collector.spans[0].attrs == {"kind": "test"}

    def test_traced_checks_enablement_per_call(self):
        @traced("late")
        def fn():
            return 1

        fn()  # disabled: nothing recorded, nothing raised
        collector = activate(Collector())
        fn()
        assert [s.name for s in collector.spans] == ["late"]


class TestLifecycle:
    def test_activate_deactivate_roundtrip(self):
        collector = activate(Collector())
        assert active_collector() is collector
        assert deactivate() is collector
        assert not enabled()

    def test_activate_is_idempotent_on_existing_collector(self):
        first = activate()
        second = activate()
        assert first is second

    def test_metric_helpers_hit_active_registry(self):
        collector = activate(Collector())
        counter("cache.hits").inc(3)
        gauge("util").set(0.5)
        histogram("lat").observe(2.0)
        snap = collector.metrics.snapshot()
        assert snap["cache.hits"]["value"] == 3
        assert snap["util"]["value"] == 0.5
        assert snap["lat"]["count"] == 1


class TestMerge:
    def test_payload_roundtrip_reroots_under_open_span(self):
        worker = Collector()
        activate(worker)
        with span("capture.file"):
            pass
        worker.metrics.counter("screen.captured").inc(4)
        payload = worker.take_payload()
        assert worker.spans == []  # drained

        parent = activate(Collector())
        with span("parallel.map"):
            parent.merge(payload)
        paths = {s.path for s in parent.spans}
        assert "parallel.map/capture.file" in paths
        assert parent.metrics.counter("screen.captured").value == 4

    def test_merge_with_explicit_prefix(self):
        worker = activate(Collector())
        with span("leaf"):
            pass
        payload = worker.take_payload()
        parent = activate(Collector())
        parent.merge(payload, prefix="custom.root")
        assert parent.spans[0].path == "custom.root/leaf"

    def test_merge_at_root_keeps_paths(self):
        worker = activate(Collector())
        with span("leaf"):
            pass
        payload = worker.take_payload()
        parent = activate(Collector())
        parent.merge(payload)
        assert parent.spans[0].path == "leaf"

    def test_merge_respects_span_cap(self):
        worker = activate(Collector())
        for i in range(4):
            with span(f"s{i}"):
                pass
        payload = worker.take_payload()
        parent = activate(Collector(max_spans=2))
        parent.merge(payload)
        assert len(parent.spans) == 2
        assert parent.metrics.counter("obs.spans_dropped").value == 2
