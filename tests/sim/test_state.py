"""Tests for the architectural state container."""

from repro.sim.state import CpuState, DATA_SPACE_SIZE, IO_BASE, RAMEND, SRAM_START


class TestRegisters:
    def test_reg_read_write_wraps(self):
        state = CpuState()
        state.set_reg(5, 0x1FF)
        assert state.reg(5) == 0xFF

    def test_reg_pair(self):
        state = CpuState()
        state.set_reg_pair(26, 0xBEEF)
        assert state.reg(26) == 0xEF
        assert state.reg(27) == 0xBE
        assert state.reg_pair(26) == 0xBEEF

    def test_pointer_properties(self):
        state = CpuState()
        state.x, state.y, state.z = 0x0111, 0x0222, 0x0333
        assert (state.x, state.y, state.z) == (0x0111, 0x0222, 0x0333)
        assert state.reg(30) == 0x33 and state.reg(31) == 0x03

    def test_registers_are_data_space(self):
        state = CpuState()
        state.set_reg(4, 0xAA)
        assert state.load(4) == 0xAA


class TestSregAndSp:
    def test_sp_initialized_to_ramend(self):
        assert CpuState().sp == RAMEND

    def test_sp_io_mapped(self):
        state = CpuState()
        state.sp = 0x0456
        assert state.io_read(0x3D) == 0x56
        assert state.io_read(0x3E) == 0x04

    def test_sreg_io_mapped(self):
        state = CpuState()
        state.set_flag("C", 1)
        state.set_flag("Z", 1)
        assert state.io_read(0x3F) == 0b00000011

    def test_flag_accessors(self):
        state = CpuState()
        for name in "CZNVSHTI":
            state.set_flag(name, 1)
            assert state.flag(name) == 1
            state.set_flag(name, 0)
            assert state.flag(name) == 0

    def test_set_flags_bulk(self):
        state = CpuState()
        state.set_flags(C=1, Z=0, N=1)
        assert state.flag("C") == 1 and state.flag("N") == 1


class TestMemory:
    def test_io_addressing_offset(self):
        state = CpuState()
        state.io_write(0x05, 0x42)
        assert state.load(IO_BASE + 0x05) == 0x42

    def test_load_store_wraps_data_space(self):
        state = CpuState()
        state.store(DATA_SPACE_SIZE + 3, 7)
        assert state.load(3) == 7

    def test_stack_push_pop(self):
        state = CpuState()
        sp0 = state.sp
        state.push_byte(0x11)
        state.push_byte(0x22)
        assert state.sp == sp0 - 2
        assert state.pop_byte() == 0x22
        assert state.pop_byte() == 0x11
        assert state.sp == sp0

    def test_snapshot_regs(self):
        state = CpuState()
        state.set_reg(0, 9)
        snap = state.snapshot_regs()
        assert snap[0] == 9 and len(snap) == 32
        state.set_reg(0, 1)
        assert snap[0] == 9  # copy, not view

    def test_sram_start_constant(self):
        assert SRAM_START == 0x0100
