"""Load/store, I/O and bit-instruction semantics."""

from repro.sim import AvrCpu


def make(asm):
    return AvrCpu(asm)


class TestDirectAndIndirect:
    def test_lds_sts(self):
        cpu = make("ldi r16, 0x42\nsts 0x0123, r16\nlds r17, 0x0123")
        cpu.run()
        assert cpu.state.reg(17) == 0x42

    def test_ld_x_modes(self):
        cpu = make("st X+, r0\nst X+, r1\nld r16, -X\nld r17, -X")
        cpu.state.set_reg(0, 0xAA)
        cpu.state.set_reg(1, 0xBB)
        cpu.state.x = 0x0200
        cpu.run()
        assert cpu.state.reg(16) == 0xBB
        assert cpu.state.reg(17) == 0xAA
        assert cpu.state.x == 0x0200

    def test_ld_y_displacement(self):
        cpu = make("std Y+5, r2\nldd r16, Y+5")
        cpu.state.set_reg(2, 0x7E)
        cpu.state.y = 0x0300
        cpu.run()
        assert cpu.state.reg(16) == 0x7E
        assert cpu.state.y == 0x0300  # displacement does not move Y

    def test_ld_z_plain(self):
        cpu = make("st Z, r3\nld r16, Z")
        cpu.state.set_reg(3, 0x11)
        cpu.state.z = 0x0400
        cpu.run()
        assert cpu.state.reg(16) == 0x11

    def test_pointer_wraps_16bit(self):
        cpu = make("ld r16, -X")
        cpu.state.x = 0
        cpu.run()
        assert cpu.state.x == 0xFFFF


class TestStack:
    def test_push_pop_pair(self):
        cpu = make("push r0\npush r1\npop r16\npop r17")
        cpu.state.set_reg(0, 1)
        cpu.state.set_reg(1, 2)
        cpu.run()
        assert cpu.state.reg(16) == 2
        assert cpu.state.reg(17) == 1


class TestProgramMemory:
    def test_lpm_reads_flash_bytes(self):
        # flash word 3 = 0xBBAA; LPM is byte-addressed little-endian.
        # 0x9105 = lpm r16, Z+ ; 0x9115 = lpm r17, Z+ ; 0x9598 = break
        cpu = AvrCpu([0x9105, 0x9115, 0x9598, 0xBBAA])
        cpu.state.z = 6  # byte address of word 3
        cpu.run()
        assert cpu.state.reg(16) == 0xAA
        assert cpu.state.reg(17) == 0xBB
        assert cpu.state.z == 8

    def test_lpm_r0_implied(self):
        cpu = AvrCpu([0x95C8, 0x9598, 0x1234])  # lpm ; break ; data
        cpu.state.z = 4
        cpu.run()
        assert cpu.state.reg(0) == 0x34


class TestIo:
    def test_in_out(self):
        cpu = make("ldi r16, 0x5A\nout 0x12, r16\nin r17, 0x12")
        cpu.run()
        assert cpu.state.reg(17) == 0x5A

    def test_sbi_cbi(self):
        cpu = make("sbi 0x05, 3\nsbi 0x05, 0\ncbi 0x05, 3")
        cpu.run()
        assert cpu.state.io_read(0x05) == 0x01


class TestBitInstructions:
    def test_bst_bld(self):
        cpu = make("bst r0, 7\nbld r16, 0")
        cpu.state.set_reg(0, 0x80)
        cpu.run()
        assert cpu.state.flag("T") == 1
        assert cpu.state.reg(16) == 1

    def test_bld_clears_when_t_zero(self):
        cpu = make("clt\nbld r16, 2")
        cpu.state.set_reg(16, 0xFF)
        cpu.run()
        assert cpu.state.reg(16) == 0xFB

    def test_bset_bclr_all_flags(self):
        cpu = make("\n".join(f"bset {s}" for s in range(8)))
        cpu.run()
        assert cpu.state.sreg == 0xFF
        cpu2 = make("\n".join(f"bclr {s}" for s in range(8)))
        cpu2.state.sreg = 0xFF
        cpu2.run()
        assert cpu2.state.sreg == 0x00

    def test_sreg_aliases(self):
        cpu = make("sec\nsez\nsen\nsev\nses\nseh\nset\nsei")
        cpu.run()
        assert cpu.state.sreg == 0xFF
