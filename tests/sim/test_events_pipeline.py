"""Event records and pipeline pairing."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.isa import REGISTRY
from repro.power.acquisition import random_instance
from repro.sim import AvrCpu, canonicalize, pipeline_slots


class TestEvents:
    def test_alu_event_contents(self):
        cpu = AvrCpu("add r0, r1")
        cpu.state.set_reg(0, 3)
        cpu.state.set_reg(1, 4)
        event = cpu.step()
        assert event.key == "ADD"
        assert [r.reg for r in event.reads] == [0, 1]
        assert event.alu_operands == (3, 4)
        assert event.alu_result == 7
        assert event.writes[0].old == 3 and event.writes[0].new == 7

    def test_sreg_toggled_mask(self):
        cpu = AvrCpu("sec")
        event = cpu.step()
        assert event.sreg_toggled == 0x01

    def test_memory_event(self):
        cpu = AvrCpu("sts 0x0150, r4")
        cpu.state.set_reg(4, 0x99)
        event = cpu.step()
        assert event.mem[0].kind == "store"
        assert event.mem[0].address == 0x0150
        assert event.mem[0].value == 0x99

    def test_branch_event(self):
        cpu = AvrCpu("sec\nbrcs .+0")
        cpu.step()
        event = cpu.step()
        assert event.branch_taken is True

    def test_opcode_words_recorded(self):
        cpu = AvrCpu("lds r0, 0x0123")
        event = cpu.step()
        assert event.opcode_words == (0x9000, 0x0123)


class TestCanonicalize:
    def test_tst(self):
        cpu = AvrCpu("tst r5")
        event = cpu.step()
        canonical = canonicalize(event.instruction)
        assert canonical.spec.key == "AND"
        assert canonical.values == (5, 5)

    def test_breq(self):
        cpu = AvrCpu("breq .+4\nnop\nnop\nnop")
        event = cpu.step()
        canonical = canonicalize(event.instruction)
        assert canonical.spec.key == "BRBS"
        assert canonical.values == (1, 2)

    def test_cbr_complements(self):
        cpu = AvrCpu("cbr r17, 0x0F")
        canonical = canonicalize(cpu.step().instruction)
        assert canonical.spec.key == "ANDI"
        assert canonical.values == (17, 0xF0)

    def test_ser_fixed_value(self):
        cpu = AvrCpu("ser r18")
        canonical = canonicalize(cpu.step().instruction)
        assert canonical.spec.key == "LDI"
        assert canonical.values == (18, 0xFF)

    def test_canonical_passthrough(self):
        cpu = AvrCpu("add r1, r2")
        instruction = cpu.step().instruction
        assert canonicalize(instruction) is instruction


class TestPipeline:
    def test_slots_pair_fetch_with_execute(self):
        cpu = AvrCpu("nop\nadd r0, r1\nnop")
        events = cpu.run()
        slots = pipeline_slots(events)
        assert len(slots) == 3
        assert slots[0].fetch_words == events[1].opcode_words
        assert slots[1].prev_words == events[0].opcode_words
        assert slots[-1].fetch_words == ()
        assert slots[0].prev_words == ()


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_property_every_class_executes(seed):
    """Random instances of every instruction class execute without error."""
    rng = np.random.default_rng(seed)
    for key in REGISTRY:
        instance = random_instance(key, rng, word_address=0)
        cpu = AvrCpu([*instance.encode(), 0x0000, 0x0000, 0x0000])
        cpu.state.x = 0x0200
        cpu.state.y = 0x0300
        cpu.state.z = 0x0400
        event = cpu.step()
        assert event.cycles >= 1
