"""Instruction-semantics tests for arithmetic/logic, flags included.

Flag expectations follow the AVR instruction set manual formulas.
"""

import pytest

from repro.sim import AvrCpu


def run(asm, **init_regs):
    """Assemble, preset registers, run to completion, return the CPU."""
    cpu = AvrCpu(asm)
    for name, value in init_regs.items():
        if name == "sreg":
            cpu.state.sreg = value
        else:
            cpu.state.set_reg(int(name[1:]), value)
    cpu.run()
    return cpu


def flags(cpu, names):
    return {n: cpu.state.flag(n) for n in names}


class TestAdd:
    def test_plain_add(self):
        cpu = run("add r0, r1", r0=10, r1=20)
        assert cpu.state.reg(0) == 30

    def test_carry_and_zero(self):
        cpu = run("add r0, r1", r0=0x80, r1=0x80)
        assert cpu.state.reg(0) == 0
        assert flags(cpu, "CZNV") == {"C": 1, "Z": 1, "N": 0, "V": 1}

    def test_half_carry(self):
        cpu = run("add r0, r1", r0=0x08, r1=0x08)
        assert cpu.state.flag("H") == 1

    def test_signed_overflow(self):
        cpu = run("add r0, r1", r0=0x7F, r1=0x01)
        assert cpu.state.reg(0) == 0x80
        assert flags(cpu, "VNS") == {"V": 1, "N": 1, "S": 0}

    def test_adc_consumes_carry(self):
        cpu = run("sec\nadc r0, r1", r0=1, r1=1)
        assert cpu.state.reg(0) == 3


class TestSub:
    def test_plain_sub(self):
        cpu = run("sub r2, r3", r2=30, r3=10)
        assert cpu.state.reg(2) == 20
        assert cpu.state.flag("C") == 0

    def test_borrow_sets_carry(self):
        cpu = run("sub r2, r3", r2=10, r3=30)
        assert cpu.state.reg(2) == (10 - 30) & 0xFF
        assert cpu.state.flag("C") == 1

    def test_cp_does_not_write(self):
        cpu = run("cp r2, r3", r2=5, r3=5)
        assert cpu.state.reg(2) == 5
        assert cpu.state.flag("Z") == 1

    def test_sbc_z_flag_sticky(self):
        # SBC never *sets* Z; it can only leave it or clear it.
        cpu = run("clz\nsbc r2, r3", r2=5, r3=5)
        assert cpu.state.reg(2) == 5 - 5
        assert cpu.state.flag("Z") == 0  # stays cleared despite zero result

    def test_cpc_chain_16bit_compare(self):
        # Compare r1:r0 == r3:r2 as a 16-bit quantity.
        cpu = run("cp r0, r2\ncpc r1, r3", r0=0x34, r1=0x12, r2=0x34, r3=0x12)
        assert cpu.state.flag("Z") == 1


class TestLogic:
    def test_and_clears_v(self):
        cpu = run("sev\nand r4, r5", r4=0xF0, r5=0x0F)
        assert cpu.state.reg(4) == 0
        assert flags(cpu, "ZV") == {"Z": 1, "V": 0}

    def test_or(self):
        cpu = run("or r4, r5", r4=0xF0, r5=0x0F)
        assert cpu.state.reg(4) == 0xFF
        assert cpu.state.flag("N") == 1

    def test_eor_self_clears(self):
        cpu = run("eor r4, r4", r4=0xA5)
        assert cpu.state.reg(4) == 0
        assert cpu.state.flag("Z") == 1

    def test_com(self):
        cpu = run("com r6", r6=0x55)
        assert cpu.state.reg(6) == 0xAA
        assert cpu.state.flag("C") == 1

    def test_neg(self):
        cpu = run("neg r6", r6=1)
        assert cpu.state.reg(6) == 0xFF
        assert cpu.state.flag("C") == 1

    def test_neg_of_zero(self):
        cpu = run("neg r6", r6=0)
        assert cpu.state.reg(6) == 0
        assert cpu.state.flag("C") == 0

    def test_neg_of_0x80_overflow(self):
        cpu = run("neg r6", r6=0x80)
        assert cpu.state.reg(6) == 0x80
        assert cpu.state.flag("V") == 1


class TestIncDec:
    def test_inc_wraps_without_carry(self):
        cpu = run("sec\ninc r7", r7=0xFF)
        assert cpu.state.reg(7) == 0
        assert cpu.state.flag("Z") == 1
        assert cpu.state.flag("C") == 1  # C untouched by INC

    def test_inc_overflow_at_7f(self):
        cpu = run("inc r7", r7=0x7F)
        assert cpu.state.flag("V") == 1

    def test_dec_overflow_at_80(self):
        cpu = run("dec r7", r7=0x80)
        assert cpu.state.flag("V") == 1
        assert cpu.state.reg(7) == 0x7F


class TestShifts:
    def test_lsr_carry_out(self):
        cpu = run("lsr r8", r8=0x03)
        assert cpu.state.reg(8) == 0x01
        assert cpu.state.flag("C") == 1
        assert cpu.state.flag("N") == 0

    def test_ror_rotates_through_carry(self):
        cpu = run("sec\nror r8", r8=0x02)
        assert cpu.state.reg(8) == 0x81
        assert cpu.state.flag("C") == 0

    def test_asr_preserves_sign(self):
        cpu = run("asr r8", r8=0x81)
        assert cpu.state.reg(8) == 0xC0
        assert cpu.state.flag("C") == 1

    def test_lsl_alias_doubles(self):
        cpu = run("lsl r8", r8=0x41)
        assert cpu.state.reg(8) == 0x82

    def test_rol_alias(self):
        cpu = run("sec\nrol r8", r8=0x01)
        assert cpu.state.reg(8) == 0x03

    def test_swap(self):
        cpu = run("swap r8", r8=0xAB)
        assert cpu.state.reg(8) == 0xBA


class TestImmediates:
    def test_ldi_and_ser(self):
        cpu = run("ldi r16, 0x5A\nser r17")
        assert cpu.state.reg(16) == 0x5A
        assert cpu.state.reg(17) == 0xFF

    def test_subi_sbci_16bit_chain(self):
        # subtract 0x0101 from r25:r24 = 0x0203
        cpu = run("subi r24, 0x01\nsbci r25, 0x01", r24=0x03, r25=0x02)
        assert cpu.state.reg(24) == 0x02
        assert cpu.state.reg(25) == 0x01

    def test_andi_ori(self):
        cpu = run("andi r18, 0x0F\nori r19, 0xF0", r18=0xFF, r19=0x0F)
        assert cpu.state.reg(18) == 0x0F
        assert cpu.state.reg(19) == 0xFF

    def test_cbr_clears_mask(self):
        cpu = run("cbr r20, 0x0F", r20=0xFF)
        assert cpu.state.reg(20) == 0xF0

    def test_cpi_flags(self):
        cpu = run("cpi r21, 10", r21=10)
        assert cpu.state.flag("Z") == 1


class TestWordArithmetic:
    def test_adiw(self):
        cpu = run("adiw r24, 63", r24=0xFF, r25=0x00)
        assert cpu.state.reg_pair(24) == 0xFF + 63

    def test_adiw_carry(self):
        cpu = run("adiw r24, 1", r24=0xFF, r25=0xFF)
        assert cpu.state.reg_pair(24) == 0
        assert cpu.state.flag("C") == 1
        assert cpu.state.flag("Z") == 1

    def test_sbiw_borrow(self):
        cpu = run("sbiw r26, 1", r26=0, r27=0)
        assert cpu.state.reg_pair(26) == 0xFFFF
        assert cpu.state.flag("C") == 1

    def test_movw(self):
        cpu = run("movw r0, r30", r30=0xCD, r31=0xAB)
        assert cpu.state.reg(0) == 0xCD
        assert cpu.state.reg(1) == 0xAB


class TestMultiply:
    def test_mul_unsigned(self):
        cpu = run("mul r16, r17", r16=200, r17=100)
        assert cpu.state.reg(0) == (200 * 100) & 0xFF
        assert cpu.state.reg(1) == (200 * 100) >> 8
        assert cpu.state.flag("C") == 0

    def test_mul_carry_is_bit15(self):
        cpu = run("mul r16, r17", r16=255, r17=255)
        assert cpu.state.flag("C") == 1

    def test_muls_signed(self):
        cpu = run("muls r16, r17", r16=0xFF, r17=2)  # -1 * 2
        assert (cpu.state.reg(1) << 8 | cpu.state.reg(0)) == 0xFFFE

    def test_mulsu(self):
        cpu = run("mulsu r16, r17", r16=0xFF, r17=2)  # -1 * 2u
        assert (cpu.state.reg(1) << 8 | cpu.state.reg(0)) == 0xFFFE

    def test_fmul_shifts_left(self):
        cpu = run("fmul r16, r17", r16=0x40, r17=0x40)
        assert (cpu.state.reg(1) << 8 | cpu.state.reg(0)) == 0x2000
