"""Control-flow semantics: branches, skips, calls, jumps."""

import pytest

from repro.sim import AvrCpu, ProgramEnd


def run(asm, max_steps=1000, **init_regs):
    cpu = AvrCpu(asm)
    for name, value in init_regs.items():
        cpu.state.set_reg(int(name[1:]), value)
    cpu.run(max_steps=max_steps)
    return cpu


class TestBranches:
    def test_breq_taken(self):
        cpu = run("cp r0, r1\nbreq skip\nldi r16, 1\nskip: ldi r17, 2",
                  r0=5, r1=5)
        assert cpu.state.reg(16) == 0
        assert cpu.state.reg(17) == 2

    def test_breq_not_taken(self):
        cpu = run("cp r0, r1\nbreq skip\nldi r16, 1\nskip: ldi r17, 2",
                  r0=5, r1=6)
        assert cpu.state.reg(16) == 1

    def test_taken_branch_costs_extra_cycle(self):
        cpu_taken = run("sec\nbrcs end\nend: nop")
        cpu_not = run("clc\nbrcs end\nend: nop")
        assert cpu_taken.cycle_count == cpu_not.cycle_count + 1

    def test_loop_counts(self):
        cpu = run("ldi r16, 5\nloop: dec r16\nbrne loop")
        assert cpu.state.reg(16) == 0

    def test_brge_brlt_signed(self):
        cpu = run("cp r0, r1\nbrge ge\nldi r16, 1\nrjmp end\nge: ldi r16, 2\nend: nop",
                  r0=0xFF, r1=0x01)  # -1 < 1 signed
        assert cpu.state.reg(16) == 1

    def test_all_sreg_branch_aliases_execute(self):
        # Each alias must decode + execute without error in both states.
        for name in ("breq", "brne", "brcs", "brcc", "brmi", "brpl", "brvs",
                     "brvc", "brlt", "brge", "brhs", "brhc", "brts", "brtc",
                     "brie", "brid"):
            run(f"{name} .+0\nnop")


class TestSkips:
    def test_cpse_skips_when_equal(self):
        cpu = run("cpse r0, r1\nldi r16, 1\nldi r17, 2", r0=3, r1=3)
        assert cpu.state.reg(16) == 0
        assert cpu.state.reg(17) == 2

    def test_cpse_skips_two_word_instruction(self):
        cpu = run("cpse r0, r1\nlds r16, 0x0100\nldi r17, 2", r0=3, r1=3)
        assert cpu.state.reg(17) == 2
        assert cpu.state.reg(16) == 0

    def test_sbrc_sbrs(self):
        cpu = run("sbrc r0, 0\nldi r16, 1\nsbrs r0, 0\nldi r17, 1", r0=0x01)
        assert cpu.state.reg(16) == 1  # bit set -> no skip
        assert cpu.state.reg(17) == 0  # bit set -> skip

    def test_sbic_sbis(self):
        cpu = AvrCpu("sbic 0x05, 3\nldi r16, 1\nsbis 0x05, 3\nldi r17, 1")
        cpu.state.io_write(0x05, 0x08)
        cpu.run()
        assert cpu.state.reg(16) == 1
        assert cpu.state.reg(17) == 0

    def test_skipped_event_flagged(self):
        cpu = AvrCpu("cpse r0, r1\nldi r16, 1\nnop")
        events = cpu.run()
        assert events[1].skipped
        assert events[1].key == "LDI"
        assert cpu.state.reg(16) == 0


class TestJumpsAndCalls:
    def test_rjmp(self):
        cpu = run("rjmp over\nldi r16, 1\nover: ldi r17, 2")
        assert cpu.state.reg(16) == 0 and cpu.state.reg(17) == 2

    def test_jmp_absolute(self):
        cpu = run("jmp over\nldi r16, 1\nover: ldi r17, 2")
        assert cpu.state.reg(16) == 0 and cpu.state.reg(17) == 2

    def test_rcall_ret(self):
        cpu = run(
            """
                rcall sub
                ldi r17, 2
                break
            sub:
                ldi r16, 1
                ret
            """
        )
        assert cpu.state.reg(16) == 1
        assert cpu.state.reg(17) == 2

    def test_call_pushes_return_address(self):
        cpu = AvrCpu("call sub\nbreak\nsub: nop\nbreak")
        sp0 = cpu.state.sp
        cpu.step()
        assert cpu.state.sp == sp0 - 2
        assert cpu.state.pc == 3

    def test_icall_uses_z(self):
        cpu = AvrCpu("icall\nbreak\nldi r16, 7\nbreak")
        cpu.state.z = 2
        cpu.run()
        assert cpu.state.reg(16) == 7

    def test_ijmp_uses_z(self):
        cpu = AvrCpu("ijmp\nbreak\nldi r16, 9\nbreak")
        cpu.state.z = 2
        cpu.run()
        assert cpu.state.reg(16) == 9

    def test_reti_sets_interrupt_flag(self):
        cpu = AvrCpu("rcall sub\nbreak\nsub: reti")
        cpu.run()
        assert cpu.state.flag("I") == 1

    def test_nested_calls(self):
        cpu = run(
            """
                rcall a
                break
            a:  rcall b
                inc r16
                ret
            b:  inc r16
                ret
            """
        )
        assert cpu.state.reg(16) == 2


class TestCpuLifecycle:
    def test_program_end_raised(self):
        cpu = AvrCpu("nop")
        cpu.step()
        with pytest.raises(ProgramEnd):
            cpu.step()

    def test_break_halts(self):
        cpu = AvrCpu("break\nldi r16, 1")
        cpu.run()
        assert cpu.state.reg(16) == 0
        assert cpu.halted

    def test_run_max_steps(self):
        cpu = AvrCpu("loop: rjmp loop")
        events = cpu.run(max_steps=10)
        assert len(events) == 10

    def test_cycle_count_accumulates(self):
        cpu = AvrCpu("nop\nnop\nlds r0, 0x100")
        cpu.run()
        assert cpu.cycle_count == 1 + 1 + 2

    def test_program_from_words(self):
        cpu = AvrCpu([0x0000, 0xE010])  # nop; ldi r17, 0
        cpu.run()
        assert cpu.state.pc == 2
