"""Property tests: SREG flag semantics against independent reference math.

Each property recomputes the expected flags from plain Python integer
arithmetic (per the AVR instruction set manual's formulas) and checks the
simulator agrees, over hypothesis-driven operand sweeps.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import AvrCpu

BYTE = st.integers(0, 255)


def run_one(line, **regs):
    cpu = AvrCpu(line)
    for name, value in regs.items():
        if name == "carry":
            cpu.state.set_flag("C", value)
        else:
            cpu.state.set_reg(int(name[1:]), value)
    cpu.run()
    return cpu.state


@settings(max_examples=200, deadline=None)
@given(BYTE, BYTE)
def test_property_add_flags(rd, rr):
    state = run_one("add r0, r1", r0=rd, r1=rr)
    total = rd + rr
    res = total & 0xFF
    assert state.reg(0) == res
    assert state.flag("C") == (total > 0xFF)
    assert state.flag("Z") == (res == 0)
    assert state.flag("N") == (res >> 7)
    assert state.flag("H") == (((rd & 0xF) + (rr & 0xF)) > 0xF)
    # signed overflow
    signed = ((rd ^ 0x80) - 0x80) + ((rr ^ 0x80) - 0x80)
    assert state.flag("V") == (not (-128 <= signed <= 127))
    assert state.flag("S") == state.flag("N") ^ state.flag("V")


@settings(max_examples=200, deadline=None)
@given(BYTE, BYTE, st.booleans())
def test_property_sbc_value_and_carry(rd, rr, carry):
    state = run_one("sbc r0, r1", r0=rd, r1=rr, carry=carry)
    assert state.reg(0) == (rd - rr - carry) & 0xFF
    assert state.flag("C") == (rd < rr + carry)


@settings(max_examples=200, deadline=None)
@given(BYTE, BYTE)
def test_property_cp_leaves_registers(rd, rr):
    state = run_one("cp r0, r1", r0=rd, r1=rr)
    assert state.reg(0) == rd
    assert state.reg(1) == rr
    assert state.flag("Z") == (rd == rr)
    assert state.flag("C") == (rd < rr)


@settings(max_examples=150, deadline=None)
@given(BYTE)
def test_property_com_neg_identities(rd):
    com = run_one("com r0", r0=rd)
    assert com.reg(0) == (0xFF ^ rd)
    assert com.flag("C") == 1
    neg = run_one("neg r0", r0=rd)
    assert neg.reg(0) == (-rd) & 0xFF
    assert neg.flag("C") == (rd != 0)
    assert neg.flag("Z") == (rd == 0)


@settings(max_examples=150, deadline=None)
@given(BYTE, st.booleans())
def test_property_ror_rol_inverse(rd, carry):
    """ROL then ROR (or vice versa) restores the register and carry."""
    cpu = AvrCpu("rol r0\nror r0")
    cpu.state.set_reg(0, rd)
    cpu.state.set_flag("C", carry)
    cpu.run()
    assert cpu.state.reg(0) == rd
    assert cpu.state.flag("C") == carry


@settings(max_examples=150, deadline=None)
@given(BYTE)
def test_property_swap_involution(rd):
    cpu = AvrCpu("swap r0\nswap r0")
    cpu.state.set_reg(0, rd)
    cpu.run()
    assert cpu.state.reg(0) == rd


@settings(max_examples=150, deadline=None)
@given(BYTE, BYTE)
def test_property_sub_subi_agree(rd, k):
    """SUB with a register equals SUBI with the same constant."""
    by_reg = run_one("sub r16, r0", r16=rd, r0=k)
    by_imm = run_one(f"subi r16, {k}", r16=rd)
    assert by_reg.reg(16) == by_imm.reg(16)
    assert by_reg.sreg == by_imm.sreg


@settings(max_examples=150, deadline=None)
@given(BYTE, BYTE)
def test_property_16bit_add_chain(lo, hi):
    """ADD/ADC chain computes a correct 16-bit sum."""
    cpu = AvrCpu("add r0, r2\nadc r1, r3")
    value = (hi << 8) | lo
    add = 0x0101  # r3:r2
    cpu.state.set_reg(0, lo)
    cpu.state.set_reg(1, hi)
    cpu.state.set_reg(2, add & 0xFF)
    cpu.state.set_reg(3, add >> 8)
    cpu.run()
    result = (cpu.state.reg(1) << 8) | cpu.state.reg(0)
    assert result == (value + add) & 0xFFFF


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 0xFFFF), st.integers(0, 63))
def test_property_adiw_sbiw_inverse(word, k):
    cpu = AvrCpu(f"adiw r24, {k}\nsbiw r24, {k}")
    cpu.state.set_reg_pair(24, word)
    cpu.run()
    assert cpu.state.reg_pair(24) == word


@settings(max_examples=100, deadline=None)
@given(BYTE, st.integers(0, 7))
def test_property_bst_bld_copy_bit(value, bit):
    cpu = AvrCpu(f"bst r0, {bit}\nbld r1, {bit}")
    cpu.state.set_reg(0, value)
    cpu.state.set_reg(1, 0x00)
    cpu.run()
    assert (cpu.state.reg(1) >> bit) & 1 == (value >> bit) & 1
