"""Baseline disassembler tests."""

import numpy as np
import pytest

from repro.baselines import (
    EisenbarthDisassembler,
    FlatDisassembler,
    MsgnaDisassembler,
)
from repro.features import FeatureConfig
from repro.power import Acquisition


@pytest.fixture(scope="module")
def dataset():
    acq = Acquisition(seed=31)
    full = acq.capture_instruction_set(["ADD", "LDS", "SEC"], 80, 4)
    rng = np.random.default_rng(0)
    return full.split_random(0.75, rng)


class TestMsgna:
    def test_fit_score(self, dataset):
        train, test = dataset
        baseline = MsgnaDisassembler(n_components=20).fit(train)
        assert baseline.score(test) > 0.7

    def test_predictions_in_range(self, dataset):
        train, test = dataset
        baseline = MsgnaDisassembler(n_components=10).fit(train)
        assert set(baseline.predict(test.traces)) <= {0, 1, 2}

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MsgnaDisassembler().predict(np.zeros((2, 315)))


class TestEisenbarth:
    def test_sequence_decoding(self, dataset):
        train, test = dataset
        baseline = EisenbarthDisassembler(n_components=15).fit(train)
        assert baseline.score_sequence(test) > 0.6

    def test_transition_prior_used(self, dataset):
        train, test = dataset
        # deterministic cyclic dynamics 0 -> 1 -> 2 -> 0
        sequences = [[0, 1, 2] * 30]
        baseline = EisenbarthDisassembler(n_components=15).fit(
            train, training_sequences=sequences
        )
        T = baseline.hmm.transitions_
        assert T[0, 1] > 0.8 and T[1, 2] > 0.8 and T[2, 0] > 0.8

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            EisenbarthDisassembler().predict_sequence(np.zeros((2, 315)))


class TestFlat:
    def test_fit_score_and_machine_count(self, dataset):
        train, test = dataset
        baseline = FlatDisassembler(
            FeatureConfig(kl_threshold="auto:0.9", n_components=10)
        ).fit(train)
        assert baseline.score(test) > 0.8
        assert baseline.n_binary_classifiers == 3

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FlatDisassembler().predict(np.zeros((2, 315)))
