"""DNVP selection tests."""

import numpy as np
import pytest

from repro.features import (
    DnvpSelector,
    WaveletStats,
    extract_points,
    local_maxima_2d,
    select_pair_points,
    unify_points,
)
from repro.features.selection import resolve_threshold


class TestLocalMaxima:
    def test_single_peak(self):
        field = np.zeros((5, 5))
        field[2, 3] = 1.0
        mask = local_maxima_2d(field)
        assert mask[2, 3]
        assert mask.sum() == 1

    def test_plateau_not_maxima_by_default(self):
        field = np.zeros((3, 5))
        field[1, 2] = field[1, 3] = 1.0
        assert local_maxima_2d(field).sum() == 0
        assert local_maxima_2d(field, include_plateau=True).sum() >= 2

    def test_edges_can_be_maxima(self):
        field = np.zeros((3, 4))
        field[0, 0] = 2.0
        assert local_maxima_2d(field)[0, 0]

    def test_one_row_field(self):
        field = np.array([[0.0, 1.0, 0.5, 2.0, 0.1]])
        mask = local_maxima_2d(field)
        assert mask[0, 1] and mask[0, 3]
        assert mask.sum() == 2


class TestThreshold:
    def test_numeric_passthrough(self):
        assert resolve_threshold(0.005, np.ones((2, 2))) == 0.005

    def test_auto_quantile(self):
        field = np.arange(100, dtype=float).reshape(10, 10)
        assert resolve_threshold("auto", field) == pytest.approx(
            np.quantile(field, 0.25)
        )
        assert resolve_threshold("auto:0.5", field) == pytest.approx(
            np.quantile(field, 0.5)
        )

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            resolve_threshold("bogus", np.ones((2, 2)))


def _stats_pair(rng, distinct_points, drift_points=(), n=300, n_programs=3):
    """Two classes differing at ``distinct_points``; class A drifts across
    programs at ``drift_points``."""
    shape = (6, 20)
    a = rng.normal(0, 1, (n,) + shape)
    b = rng.normal(0, 1, (n,) + shape)
    for (j, k) in distinct_points:
        b[:, j, k] += 5.0
    pids = np.repeat(np.arange(n_programs), n // n_programs)
    for (j, k) in drift_points:
        a[:, j, k] += pids * 3.0
        b[:, j, k] += pids * 3.0
    return (
        WaveletStats.from_images(a, pids),
        WaveletStats.from_images(b, pids),
    )


class TestPairSelection:
    def test_finds_planted_points(self):
        rng = np.random.default_rng(0)
        planted = [(2, 5), (4, 12)]
        stats_a, stats_b = _stats_pair(rng, planted)
        selection = select_pair_points(
            stats_a, stats_b, kl_threshold="auto:0.9", top_k=2
        )
        assert set(selection.points) == set(planted)
        assert not selection.relaxed

    def test_rejects_drifting_point(self):
        rng = np.random.default_rng(1)
        # (2,5) is distinct AND drifts; (4,12) is distinct and stable.
        stats_a, stats_b = _stats_pair(
            rng, [(2, 5), (4, 12)], drift_points=[(2, 5)]
        )
        selection = select_pair_points(
            stats_a, stats_b, kl_threshold="auto:0.9", top_k=1
        )
        assert selection.points == [(4, 12)]

    def test_relaxation_never_empty(self):
        rng = np.random.default_rng(2)
        stats_a, stats_b = _stats_pair(rng, [(1, 1)])
        selection = select_pair_points(
            stats_a, stats_b, kl_threshold=0.0, top_k=3
        )
        assert len(selection.points) == 3
        assert selection.relaxed

    def test_top_k_respected(self):
        rng = np.random.default_rng(3)
        planted = [(0, 1), (1, 3), (2, 5), (3, 7), (4, 9)]
        stats_a, stats_b = _stats_pair(rng, planted)
        selection = select_pair_points(
            stats_a, stats_b, kl_threshold="auto:0.9", top_k=3
        )
        assert len(selection.points) == 3
        assert set(selection.points) <= set(planted)


class TestStableTieBreak:
    """Regression tests: tie order of equal-valued points is the flat
    (row-major) point order, not whatever ``argsort(...)[::-1]`` produced."""

    def test_descending_order_ties_by_lowest_flat_index(self):
        from repro.features.selection import _descending_order

        values = np.array([[0.0, 2.0, 0.0], [2.0, 0.0, 2.0]])
        order = _descending_order(values)
        # The three tied maxima come first, in flat order 1 < 3 < 5.
        assert order[:3].tolist() == [1, 3, 5]

    def test_neg_inf_sentinels_sort_last(self):
        from repro.features.selection import _descending_order

        values = np.array([[-np.inf, 1.0], [1.0, -np.inf]])
        order = _descending_order(values)
        assert order[:2].tolist() == [1, 2]
        assert set(order[2:].tolist()) == {0, 3}

    def test_tied_field_selects_lowest_flat_indices_first(self):
        """Equal-height isolated peaks must be picked in flat point order."""
        rng = np.random.default_rng(5)
        stats_a, stats_b = _stats_pair(rng, [])
        between = np.zeros((6, 20))
        # Four isolated peaks of identical height, flat order:
        # (0, 2) < (0, 17) < (3, 9) < (5, 4).
        peaks = [(0, 2), (0, 17), (3, 9), (5, 4)]
        for (j, k) in peaks:
            between[j, k] = 7.0
        zeros = np.zeros_like(between)
        selection = select_pair_points(
            stats_a,
            stats_b,
            kl_threshold=1.0,
            top_k=3,
            within_a=zeros,
            within_b=zeros,
            between=between,
        )
        assert selection.points == [(0, 2), (0, 17), (3, 9)]

    def test_relaxed_tier_also_stable(self):
        rng = np.random.default_rng(6)
        stats_a, stats_b = _stats_pair(rng, [])
        between = np.zeros((4, 10))
        peaks = [(0, 1), (1, 4), (2, 7), (3, 2)]
        for (j, k) in peaks:
            between[j, k] = 3.0
        # Nothing passes the strict threshold -> relaxation tier ranks
        # all peaks; ties must still come back in flat order.
        ones = np.ones_like(between)
        selection = select_pair_points(
            stats_a,
            stats_b,
            kl_threshold=0.5,
            top_k=4,
            within_a=ones,
            within_b=ones,
            between=between,
        )
        assert selection.relaxed
        assert selection.points == sorted(peaks)


class TestSelectorAndExtract:
    def test_multiclass_union(self):
        rng = np.random.default_rng(4)
        shape = (6, 20)
        n = 240
        pids = np.repeat([0, 1, 2], n // 3)
        images = {
            "A": rng.normal(0, 1, (n,) + shape),
            "B": rng.normal(0, 1, (n,) + shape),
            "C": rng.normal(0, 1, (n,) + shape),
        }
        images["B"][:, 1, 2] += 5.0
        images["C"][:, 3, 8] += 5.0
        stats = {
            k: WaveletStats.from_images(v, pids) for k, v in images.items()
        }
        selector = DnvpSelector(kl_threshold="auto:0.9", top_k=2).fit(stats)
        assert (1, 2) in selector.points
        assert (3, 8) in selector.points
        assert len(selector.pair_selections) == 3
        assert selector.n_points == len(selector.points)

    def test_extract_points(self):
        images = np.arange(2 * 3 * 4).reshape(2, 3, 4)
        values = extract_points(images, [(0, 0), (2, 3)])
        np.testing.assert_array_equal(values, [[0, 11], [12, 23]])

    def test_extract_single_image(self):
        image = np.arange(12).reshape(3, 4)
        np.testing.assert_array_equal(
            extract_points(image, [(1, 1)]), [5]
        )

    def test_extract_empty_rejected(self):
        with pytest.raises(ValueError):
            extract_points(np.zeros((1, 2, 2)), [])

    def test_unify_deterministic_order(self):
        from repro.features.selection import PairSelection

        def sel(points):
            return PairSelection(
                "a", "b", points, np.zeros((1, 1)),
                np.zeros((1, 1), bool), np.zeros((1, 1), bool),
                np.zeros((1, 1), bool), False,
            )

        unified = unify_points([sel([(2, 1), (0, 5)]), sel([(0, 5), (1, 9)])])
        assert unified == [(0, 5), (1, 9), (2, 1)]
