"""PCA tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.features import PCA


class TestPCA:
    def test_first_component_is_max_variance_direction(self):
        rng = np.random.default_rng(0)
        t = rng.normal(0, 3, 500)
        X = np.column_stack([t, 0.1 * rng.normal(0, 1, 500)])
        angle = np.deg2rad(30)
        R = np.array([[np.cos(angle), -np.sin(angle)],
                      [np.sin(angle), np.cos(angle)]])
        X = X @ R.T
        pca = PCA(n_components=1).fit(X)
        direction = pca.components_[0]
        expected = R @ np.array([1.0, 0.0])
        assert abs(abs(direction @ expected) - 1.0) < 0.01

    def test_explained_variance_sorted_and_ratios(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, (200, 5)) * np.array([5, 3, 1, 0.5, 0.1])
        pca = PCA().fit(X)
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-9)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_transform_decorrelates(self):
        rng = np.random.default_rng(2)
        base = rng.normal(0, 1, (300, 2))
        X = np.column_stack([base[:, 0], base[:, 0] + 0.3 * base[:, 1]])
        projected = PCA().fit_transform(X)
        cov = np.cov(projected.T)
        assert abs(cov[0, 1]) < 1e-8

    def test_whiten_unit_variance(self):
        rng = np.random.default_rng(3)
        X = rng.normal(0, 1, (400, 3)) * np.array([10, 2, 0.5])
        projected = PCA(whiten=True).fit_transform(X)
        np.testing.assert_allclose(projected.var(axis=0), 1.0, atol=0.05)

    def test_inverse_transform_round_trip(self):
        rng = np.random.default_rng(4)
        X = rng.normal(0, 1, (100, 4))
        pca = PCA().fit(X)
        recovered = pca.inverse_transform(pca.transform(X))
        np.testing.assert_allclose(recovered, X, atol=1e-8)

    def test_truncated_reconstruction_error_bounded(self):
        rng = np.random.default_rng(5)
        X = rng.normal(0, 1, (200, 6)) * np.array([8, 4, 2, 0.1, 0.05, 0.01])
        pca = PCA(n_components=3).fit(X)
        recon = pca.inverse_transform(pca.transform(X))
        residual = np.linalg.norm(X - recon) / np.linalg.norm(X)
        assert residual < 0.05

    def test_components_capped_by_rank(self):
        X = np.random.default_rng(6).normal(0, 1, (5, 10))
        pca = PCA(n_components=50).fit(X)
        assert pca.n_components_ <= 5

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA().transform(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            _ = PCA().n_components_

    def test_1d_input_rejected(self):
        with pytest.raises(ValueError):
            PCA().fit(np.zeros(10))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_variance_preserved_full_rank(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(0, 1, (40, 4))
        projected = PCA().fit_transform(X)
        assert np.var(projected, axis=0).sum() == pytest.approx(
            np.var(X, axis=0).sum(), rel=1e-6
        )
