"""FeaturePipeline integration tests on synthetic trace data."""

import numpy as np
import pytest

from repro.dsp import CwtConfig
from repro.features import FeatureConfig, FeaturePipeline


def synthetic_traces(rng, n_per_class, n_classes=3, n_samples=128):
    """Classes = distinct ring bursts; program-dependent offsets added."""
    traces, labels, pids = [], [], []
    t = np.arange(n_samples)
    for code in range(n_classes):
        period = 5 + 4 * code
        center = 40 + 15 * code
        envelope = np.exp(-0.5 * ((t - center) / 6.0) ** 2)
        signature = envelope * np.cos(2 * np.pi * (t - center) / period)
        for i in range(n_per_class):
            pid = i % 3
            trace = (
                2.0 * signature
                + rng.normal(0, 0.15, n_samples)
                + 0.5 * pid  # program DC offset
            )
            traces.append(trace)
            labels.append(code)
            pids.append(pid)
    return (
        np.array(traces, dtype=np.float32),
        np.array(labels),
        np.array(pids),
        tuple(f"C{i}" for i in range(n_classes)),
    )


SMALL_CWT = CwtConfig(n_scales=16, scale_min=2.0, scale_max=48.0)


class TestFit:
    def test_fit_transform_shapes(self):
        rng = np.random.default_rng(0)
        traces, labels, pids, names = synthetic_traces(rng, 60)
        pipe = FeaturePipeline(
            FeatureConfig(kl_threshold="auto:0.9", n_components=5, cwt=SMALL_CWT)
        )
        pipe.fit(traces, labels, pids, names)
        assert pipe.n_points > 0
        out = pipe.transform(traces)
        assert out.shape == (len(traces), 5)

    def test_classes_separate_in_feature_space(self):
        rng = np.random.default_rng(1)
        traces, labels, pids, names = synthetic_traces(rng, 60)
        pipe = FeaturePipeline(
            FeatureConfig(kl_threshold="auto:0.9", n_components=4, cwt=SMALL_CWT)
        )
        features = pipe.fit(traces, labels, pids, names).transform(traces)
        centroids = np.array(
            [features[labels == c].mean(axis=0) for c in range(3)]
        )
        spread = np.mean(
            [
                np.linalg.norm(features[labels == c] - centroids[c], axis=1).mean()
                for c in range(3)
            ]
        )
        gaps = [
            np.linalg.norm(centroids[i] - centroids[j])
            for i in range(3) for j in range(i + 1, 3)
        ]
        assert min(gaps) > 1.5 * spread

    def test_component_truncation(self):
        rng = np.random.default_rng(2)
        traces, labels, pids, names = synthetic_traces(rng, 40)
        pipe = FeaturePipeline(
            FeatureConfig(kl_threshold="auto:0.9", n_components=6, cwt=SMALL_CWT)
        )
        pipe.fit(traces, labels, pids, names)
        full = pipe.transform(traces)
        truncated = pipe.transform(traces, n_components=2)
        np.testing.assert_allclose(truncated, full[:, :2])

    def test_time_domain_mode(self):
        rng = np.random.default_rng(3)
        traces, labels, pids, names = synthetic_traces(rng, 40)
        pipe = FeaturePipeline(
            FeatureConfig(kl_threshold="auto:0.9", n_components=4, use_cwt=False)
        )
        out = pipe.fit(traces, labels, pids, names).transform(traces)
        assert out.shape[1] == 4
        assert all(j == 0 for (j, _) in pipe.points)  # single pseudo-scale

    def test_unknown_normalize_rejected(self):
        with pytest.raises(ValueError):
            FeaturePipeline(FeatureConfig(normalize="bogus"))

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            FeaturePipeline().transform(np.zeros((2, 128)))

    def test_wrong_trace_length_rejected(self):
        rng = np.random.default_rng(4)
        traces, labels, pids, names = synthetic_traces(rng, 30)
        pipe = FeaturePipeline(
            FeatureConfig(kl_threshold="auto:0.9", n_components=3, cwt=SMALL_CWT)
        )
        pipe.fit(traces, labels, pids, names)
        with pytest.raises(ValueError):
            pipe.transform(np.zeros((2, 64)))

    def test_missing_class_rejected(self):
        rng = np.random.default_rng(5)
        traces, labels, pids, names = synthetic_traces(rng, 30)
        with pytest.raises(ValueError, match="no traces"):
            FeaturePipeline(FeatureConfig(cwt=SMALL_CWT)).fit(
                traces, labels, pids, names + ("GHOST",)
            )


class TestSinglePassFit:
    """fit_transform and the statistics-pass image cache."""

    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(5)
        return synthetic_traces(rng, 45)

    def _config(self):
        return FeatureConfig(
            kl_threshold="auto:0.9", n_components=4, cwt=SMALL_CWT
        )

    def test_fit_transform_matches_fit_then_transform(self, data):
        traces, labels, pids, names = data
        features = FeaturePipeline(self._config()).fit_transform(
            traces, labels, pids, names
        )
        reference = (
            FeaturePipeline(self._config())
            .fit(traces, labels, pids, names)
            .transform(traces)
        )
        # Cached-image gathers and the sparse point evaluation agree to
        # float32 rounding of the wavelet magnitudes (~1e-7 absolute).
        np.testing.assert_allclose(
            features, reference, rtol=1e-4, atol=1e-5
        )

    def test_fit_transform_truncates_components(self, data):
        traces, labels, pids, names = data
        features = FeaturePipeline(self._config()).fit_transform(
            traces, labels, pids, names, n_components=2
        )
        assert features.shape == (len(traces), 2)

    def test_image_cache_matches_point_transform(self, data, monkeypatch):
        """Gathered point values track the sparse CWT evaluation."""
        traces, labels, pids, names = data
        cached = FeaturePipeline(self._config()).fit(
            traces, labels, pids, names
        )
        monkeypatch.setenv("REPRO_FIT_CACHE_MB", "0")
        uncached = FeaturePipeline(self._config()).fit(
            traces, labels, pids, names
        )
        assert cached.points == uncached.points
        # FFT-stage scales gather bit-identically; GEMM scales may
        # differ by float32 rounding between the full-plane and
        # sparse evaluations.
        np.testing.assert_allclose(
            cached.transform(traces),
            uncached.transform(traces),
            rtol=1e-4, atol=1e-5,
        )

    def test_cache_budget_gate(self, data):
        traces, _, _, _ = data
        pipe = FeaturePipeline(self._config())
        assert pipe._image_cache_fits(traces)
        big = np.zeros((10_000_000, 315), dtype=np.float32)
        assert not pipe._image_cache_fits(big)


class TestNormalizationModes:
    def test_batch_mode_removes_gain_shift(self):
        rng = np.random.default_rng(6)
        traces, labels, pids, names = synthetic_traces(rng, 60)
        pipe = FeaturePipeline(
            FeatureConfig(
                kl_threshold="auto:0.9", n_components=4,
                normalize="batch", cwt=SMALL_CWT,
            )
        )
        pipe.fit(traces, labels, pids, names)
        base = pipe.transform(traces)
        shifted = pipe.transform(traces * 1.5)  # deployment gain
        np.testing.assert_allclose(base, shifted, atol=0.2)

    def test_small_batch_falls_back_to_train_stats(self):
        rng = np.random.default_rng(7)
        traces, labels, pids, names = synthetic_traces(rng, 60)
        pipe = FeaturePipeline(
            FeatureConfig(
                kl_threshold="auto:0.9", n_components=4,
                normalize="batch", cwt=SMALL_CWT,
            )
        )
        pipe.fit(traces, labels, pids, names)
        single = pipe.transform(traces[:1])
        batch = pipe.transform(traces, adapt=False)
        np.testing.assert_allclose(single[0], batch[0], atol=1e-9)

    def test_adapt_override(self):
        rng = np.random.default_rng(8)
        traces, labels, pids, names = synthetic_traces(rng, 60)
        pipe = FeaturePipeline(
            FeatureConfig(
                kl_threshold="auto:0.9", n_components=4,
                normalize="batch", cwt=SMALL_CWT,
            )
        )
        pipe.fit(traces, labels, pids, names)
        adapted = pipe.transform(traces * 2.0, adapt=True)
        frozen = pipe.transform(traces * 2.0, adapt=False)
        assert not np.allclose(adapted, frozen)
