"""Parity suite for the compiled (folded-GEMM) inference path.

``CompiledPipeline`` re-expresses the staged trace→scores path as
precomputed matrix products, so every test here pins it against the
staged pipeline + classifier it was built from:

* the float64 twin against a double-precision staged pipeline at
  ≤ 1e-10 (the fold is exact; only reassociation noise remains);
* the float32 fast path against the default staged pipeline at ≤ 1e-4
  (single-precision rounding on both sides);

across all three discriminant heads (LDA / QDA / GaussianNB), plus
pickle round-trips, build determinism, unsupported-classifier errors,
and the batch-adaptation semantics of :class:`FeaturePipeline`.
"""

import pickle

import numpy as np
import pytest

from repro.core.hierarchy import LevelModel
from repro.dsp import CwtConfig
from repro.features import (
    CompiledPipeline,
    CompileError,
    FeatureConfig,
    FeaturePipeline,
)
from repro.ml import LDA, QDA, GaussianNB, OneVsOneClassifier, SVC


def synthetic_traces(rng, n_per_class, n_classes=3, n_samples=128):
    """Classes = distinct ring bursts; program-dependent offsets added.

    Same generator as ``test_pipeline.synthetic_traces`` (duplicated:
    test subdirectories are not packages, so no relative imports).
    """
    traces, labels, pids = [], [], []
    t = np.arange(n_samples)
    for code in range(n_classes):
        period = 5 + 4 * code
        center = 40 + 15 * code
        envelope = np.exp(-0.5 * ((t - center) / 6.0) ** 2)
        signature = envelope * np.cos(2 * np.pi * (t - center) / period)
        for i in range(n_per_class):
            pid = i % 3
            trace = (
                2.0 * signature
                + rng.normal(0, 0.15, n_samples)
                + 0.5 * pid  # program DC offset
            )
            traces.append(trace)
            labels.append(code)
            pids.append(pid)
    return (
        np.array(traces, dtype=np.float32),
        np.array(labels),
        np.array(pids),
        tuple(f"C{i}" for i in range(n_classes)),
    )


SMALL_CWT = CwtConfig(n_scales=16, scale_min=2.0, scale_max=48.0)
DOUBLE_CWT = CwtConfig(
    n_scales=16, scale_min=2.0, scale_max=48.0, precision="double"
)

HEADS = [LDA, QDA, GaussianNB]


def _fitted(cwt, normalize="train_stats", seed=0, n_components=5):
    rng = np.random.default_rng(seed)
    traces, labels, pids, names = synthetic_traces(rng, 60)
    pipe = FeaturePipeline(
        FeatureConfig(
            kl_threshold="auto:0.9",
            n_components=n_components,
            normalize=normalize,
            cwt=cwt,
        )
    )
    pipe.fit(traces, labels, pids, names)
    return pipe, traces, labels, names


@pytest.fixture(scope="module")
def double_fit():
    return _fitted(DOUBLE_CWT)


@pytest.fixture(scope="module")
def single_fit():
    return _fitted(SMALL_CWT)


class TestFloat64Parity:
    """The f64 twin is exact against the double-precision staged path."""

    @pytest.mark.parametrize("head", HEADS)
    def test_scores_match_staged(self, double_fit, head):
        pipe, traces, labels, names = double_fit
        clf = head().fit(pipe.transform(traces), labels)
        compiled = CompiledPipeline.build(pipe, clf, names, dtype="float64")
        staged_features = pipe.transform(traces)
        np.testing.assert_allclose(
            compiled.transform(traces),
            staged_features,
            rtol=1e-10,
            atol=1e-10,
        )
        assert np.array_equal(
            compiled.predict(traces), clf.predict(staged_features)
        )

    def test_feature_error_bound(self, double_fit):
        pipe, traces, _, names = double_fit
        clf = QDA().fit(pipe.transform(traces), np.arange(len(traces)) % 3)
        compiled = CompiledPipeline.build(pipe, clf, names, dtype="float64")
        staged = pipe.transform(traces)
        error = np.max(np.abs(compiled.transform(traces) - staged))
        assert error <= 1e-10 * max(1.0, np.abs(staged).max())


class TestFloat32Parity:
    """The f32 fast path tracks the default staged path to ~1e-4."""

    @pytest.mark.parametrize("head", HEADS)
    def test_features_and_predictions(self, single_fit, head):
        pipe, traces, labels, names = single_fit
        staged_features = pipe.transform(traces)
        clf = head().fit(staged_features, labels)
        compiled = CompiledPipeline.build(pipe, clf, names, dtype="float32")
        np.testing.assert_allclose(
            compiled.transform(traces),
            staged_features,
            rtol=1e-4,
            atol=1e-4,
        )
        staged_pred = clf.predict(staged_features)
        assert (compiled.predict(traces) == staged_pred).mean() > 0.99

    @pytest.mark.parametrize("normalize", ["batch", "none"])
    def test_normalization_modes(self, normalize):
        pipe, traces, labels, names = _fitted(SMALL_CWT, normalize=normalize)
        staged = pipe.transform(traces)
        clf = LDA().fit(staged, labels)
        compiled = CompiledPipeline.build(pipe, clf, names)
        np.testing.assert_allclose(
            compiled.transform(traces), staged, rtol=1e-4, atol=1e-4
        )

    def test_confidence_matches_staged_posterior(self, single_fit):
        pipe, traces, labels, names = single_fit
        staged_features = pipe.transform(traces)
        clf = QDA().fit(staged_features, labels)
        compiled = CompiledPipeline.build(pipe, clf, names)
        codes, confidence = compiled.predict_with_confidence(traces)
        proba = clf.predict_proba(staged_features)
        rows = np.arange(len(codes))
        columns = np.searchsorted(clf.classes_, codes)
        agree = np.abs(confidence - proba[rows, columns]) < 1e-3
        assert agree.mean() > 0.99


class TestAdaptation:
    """Batch-adaptive normalization refolds with the batch's moments."""

    def test_adaptive_batch_matches_staged(self):
        pipe, traces, labels, names = _fitted(SMALL_CWT, normalize="batch")
        clf = LDA().fit(pipe.transform(traces), labels)
        compiled = CompiledPipeline.build(pipe, clf, names)
        shifted = traces * 1.5  # deployment gain
        np.testing.assert_allclose(
            compiled.transform(shifted),
            pipe.transform(shifted),
            rtol=1e-3,
            atol=1e-3,
        )

    def test_small_batch_falls_back_to_train_stats(self):
        pipe, traces, labels, names = _fitted(SMALL_CWT, normalize="batch")
        clf = LDA().fit(pipe.transform(traces), labels)
        compiled = CompiledPipeline.build(pipe, clf, names)
        single = compiled.transform(traces[:1])
        frozen = compiled.transform(traces, adapt=False)
        np.testing.assert_allclose(single[0], frozen[0], rtol=1e-5, atol=1e-5)

    def test_adapt_override(self):
        pipe, traces, labels, names = _fitted(SMALL_CWT, normalize="batch")
        clf = LDA().fit(pipe.transform(traces), labels)
        compiled = CompiledPipeline.build(pipe, clf, names)
        adapted = compiled.transform(traces * 2.0, adapt=True)
        frozen = compiled.transform(traces * 2.0, adapt=False)
        assert not np.allclose(adapted, frozen)


class TestArtifact:
    """Pickling, determinism, and build metadata."""

    def test_pickle_round_trip(self, single_fit):
        pipe, traces, labels, names = single_fit
        clf = QDA().fit(pipe.transform(traces), labels)
        compiled = CompiledPipeline.build(pipe, clf, names)
        restored = pickle.loads(pickle.dumps(compiled))
        np.testing.assert_array_equal(
            restored.predict(traces), compiled.predict(traces)
        )
        np.testing.assert_array_equal(
            restored.decision_scores(traces), compiled.decision_scores(traces)
        )
        assert restored.meta == compiled.meta
        assert restored.label_names == compiled.label_names

    def test_build_is_deterministic(self, single_fit):
        pipe, traces, labels, names = single_fit
        clf = QDA().fit(pipe.transform(traces), labels)
        first = CompiledPipeline.build(pipe, clf, names)
        second = CompiledPipeline.build(pipe, clf, names)
        np.testing.assert_array_equal(
            first.decision_scores(traces), second.decision_scores(traces)
        )
        np.testing.assert_array_equal(
            first._projection, second._projection
        )
        np.testing.assert_array_equal(
            first._point_matrix, second._point_matrix
        )

    def test_meta_contents(self, single_fit):
        pipe, traces, labels, names = single_fit
        clf = GaussianNB().fit(pipe.transform(traces), labels)
        compiled = CompiledPipeline.build(pipe, clf, names, dtype="float32")
        meta = compiled.meta
        assert meta["classifier"] == "GNB"
        assert meta["dtype"] == "float32"
        assert meta["n_points"] == pipe.n_points
        assert meta["n_components"] == pipe.n_features
        assert meta["n_classes"] == 3
        assert compiled.n_components == pipe.n_features

    def test_unsupported_classifier_raises(self, single_fit):
        pipe, traces, labels, names = single_fit
        features = pipe.transform(traces)
        svc = SVC(max_iter=10).fit(features[:40], labels[:40])
        with pytest.raises(CompileError):
            CompiledPipeline.build(pipe, svc, names)
        ovo = OneVsOneClassifier(QDA()).fit(features, labels)
        with pytest.raises(CompileError):
            CompiledPipeline.build(pipe, ovo, names)

    def test_unfitted_pipeline_raises(self):
        pipe = FeaturePipeline(FeatureConfig(cwt=SMALL_CWT))
        with pytest.raises(CompileError):
            CompiledPipeline.build(pipe, QDA(), ())


class TestLevelModelRouting:
    """The hierarchy's lazy compiled routing and its staged fallback."""

    def test_predictions_match_staged_path(self, single_fit, monkeypatch):
        pipe, traces, labels, names = single_fit
        clf = QDA().fit(pipe.transform(traces), labels)
        model = LevelModel(pipeline=pipe, classifier=clf, label_names=names)
        compiled_pred = model.predict(traces)
        assert model.compiled is not None  # lazily built
        monkeypatch.setenv("REPRO_COMPILED_INFER", "0")
        staged_pred = model.predict(traces)
        assert (compiled_pred == staged_pred).mean() > 0.99

    def test_unsupported_classifier_falls_back(self, single_fit):
        pipe, traces, labels, names = single_fit
        features = pipe.transform(traces)
        ovo = OneVsOneClassifier(QDA()).fit(features, labels)
        model = LevelModel(pipeline=pipe, classifier=ovo, label_names=names)
        staged_pred = ovo.predict(features)
        np.testing.assert_array_equal(model.predict(traces), staged_pred)
        assert model.compiled is None
        assert model._compile_failed
        with pytest.raises(CompileError):
            model.compile()

    def test_component_truncation_stays_staged(self, single_fit):
        pipe, traces, labels, names = single_fit
        features = pipe.transform(traces)[:, :3]
        clf = QDA().fit(features, labels)
        model = LevelModel(pipeline=pipe, classifier=clf, label_names=names)
        truncated = model.predict(traces, n_components=3)
        np.testing.assert_array_equal(truncated, clf.predict(features))

    def test_level_model_pickles_with_compiled(self, single_fit):
        pipe, traces, labels, names = single_fit
        clf = QDA().fit(pipe.transform(traces), labels)
        model = LevelModel(pipeline=pipe, classifier=clf, label_names=names)
        model.compile()
        restored = pickle.loads(pickle.dumps(model))
        assert restored.compiled is not None
        np.testing.assert_array_equal(
            restored.predict(traces), model.predict(traces)
        )


class TestNoCwtPath:
    """Time-domain (``use_cwt=False``) pipelines fold to a pure gather."""

    def test_matches_staged(self):
        rng = np.random.default_rng(5)
        traces, labels, pids, names = synthetic_traces(rng, 60)
        pipe = FeaturePipeline(
            FeatureConfig(
                kl_threshold="auto:0.9",
                n_components=4,
                use_cwt=False,
            )
        )
        pipe.fit(traces, labels, pids, names)
        staged = pipe.transform(traces)
        clf = LDA().fit(staged, labels)
        compiled = CompiledPipeline.build(pipe, clf, names, dtype="float64")
        np.testing.assert_allclose(
            compiled.transform(traces), staged, rtol=1e-10, atol=1e-10
        )
        assert np.array_equal(compiled.predict(traces), clf.predict(staged))


class TestPipelineFoldedPath:
    """``FeaturePipeline`` inference itself rides the folded GEMM."""

    def test_knob_off_matches_folded(self, single_fit, monkeypatch):
        pipe, traces, _, _ = single_fit
        folded = pipe.transform(traces)
        monkeypatch.setenv("REPRO_COMPILED_INFER", "0")
        staged = pipe.transform(traces)
        np.testing.assert_allclose(folded, staged, rtol=1e-4, atol=1e-4)

    def test_point_gemm_cache_dropped_from_pickle(self, single_fit):
        pipe, traces, _, _ = single_fit
        pipe.transform(traces)  # populate the cache
        assert pipe._point_gemm is not None
        restored = pickle.loads(pickle.dumps(pipe))
        assert restored._point_gemm is None
        np.testing.assert_allclose(
            restored.transform(traces),
            pipe.transform(traces),
            rtol=1e-12,
            atol=1e-12,
        )
