"""KL divergence field tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.features import (
    WaveletStats,
    between_class_kl,
    gaussian_kl,
    symmetric_gaussian_kl,
    within_class_kl,
)


class TestGaussianKL:
    def test_identical_distributions_zero(self):
        assert gaussian_kl(0.0, 1.0, 0.0, 1.0) == pytest.approx(0.0)

    def test_known_value_mean_shift(self):
        # KL(N(1,1) || N(0,1)) = 0.5
        assert gaussian_kl(1.0, 1.0, 0.0, 1.0) == pytest.approx(0.5)

    def test_known_value_variance_ratio(self):
        # KL(N(0,1) || N(0,4)) = 0.5*(ln4 + 1/4 - 1)
        expected = 0.5 * (np.log(4) + 0.25 - 1)
        assert gaussian_kl(0.0, 1.0, 0.0, 4.0) == pytest.approx(expected)

    def test_asymmetry(self):
        assert gaussian_kl(0, 1, 0, 4) != pytest.approx(gaussian_kl(0, 4, 0, 1))

    def test_symmetric_version(self):
        a = symmetric_gaussian_kl(0.0, 1.0, 2.0, 3.0)
        b = symmetric_gaussian_kl(2.0, 3.0, 0.0, 1.0)
        assert a == pytest.approx(b)

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(-5, 5), st.floats(0.01, 10),
        st.floats(-5, 5), st.floats(0.01, 10),
    )
    def test_property_nonnegative(self, m1, v1, m2, v2):
        assert gaussian_kl(m1, v1, m2, v2) >= -1e-9

    def test_vectorized_shapes(self):
        m = np.zeros((5, 7))
        out = gaussian_kl(m, np.ones_like(m), m + 1, np.ones_like(m))
        assert out.shape == (5, 7)
        np.testing.assert_allclose(out, 0.5)

    def test_variance_floor(self):
        # zero variances must not produce NaN/inf explosions beyond floor
        out = gaussian_kl(0.0, 0.0, 1.0, 0.0)
        assert np.isfinite(out)


class TestWaveletStats:
    def test_from_images(self):
        rng = np.random.default_rng(0)
        images = rng.normal(2.0, 1.0, (60, 4, 10)).astype(np.float32)
        pids = np.repeat([0, 1, 2], 20)
        stats = WaveletStats.from_images(images, pids)
        assert stats.n == 60
        assert stats.n_programs == 3
        assert stats.mean.shape == (4, 10)
        np.testing.assert_allclose(stats.mean, 2.0, atol=0.5)

    def test_between_class_field(self):
        rng = np.random.default_rng(1)
        a = WaveletStats.from_images(rng.normal(0, 1, (200, 2, 5)))
        b_images = rng.normal(0, 1, (200, 2, 5))
        b_images[:, 1, 3] += 4.0  # one strongly different point
        b = WaveletStats.from_images(b_images)
        field = between_class_kl(a, b)
        assert np.unravel_index(field.argmax(), field.shape) == (1, 3)
        assert field[1, 3] > 10 * np.median(field)

    def test_within_class_field_flags_program_drift(self):
        rng = np.random.default_rng(2)
        images = rng.normal(0, 1, (300, 2, 5))
        pids = np.repeat([0, 1, 2], 100)
        images[pids == 2, 0, 1] += 3.0  # program 2 drifts at one point
        stats = WaveletStats.from_images(images, pids)
        field = within_class_kl(stats)
        assert np.unravel_index(field.argmax(), field.shape) == (0, 1)

    def test_within_single_program_zero(self):
        rng = np.random.default_rng(3)
        stats = WaveletStats.from_images(rng.normal(0, 1, (50, 2, 3)))
        np.testing.assert_allclose(within_class_kl(stats), 0.0)

    def test_within_is_max_over_pairs(self):
        rng = np.random.default_rng(4)
        images = rng.normal(0, 1, (300, 1, 2))
        pids = np.repeat([0, 1, 2], 100)
        images[pids == 1, 0, 0] += 2.0
        stats = WaveletStats.from_images(images, pids)
        field = within_class_kl(stats)
        # pairwise (0,1) and (1,2) differ; max captures the drift
        assert field[0, 0] > 1.0
        assert field[0, 1] < 0.5
