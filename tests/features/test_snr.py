"""SNR field tests."""

import numpy as np
import pytest

from repro.features.snr import snr_field, snr_report
from repro.power import Acquisition


class TestSnrField:
    def test_planted_leak_located(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 1, (400, 50))
        labels = np.repeat([0, 1], 200)
        values[labels == 1, 17] += 3.0
        field = snr_field(values, labels)
        assert field.argmax() == 17
        assert field[17] > 1.0
        assert np.median(field) < 0.1

    def test_known_value(self):
        rng = np.random.default_rng(1)
        n = 50_000
        labels = np.repeat([0, 1], n)
        # means +/- 1, unit noise: signal var = 1, noise var = 1 -> SNR 1
        values = rng.normal(0, 1, (2 * n, 1))
        values[labels == 1, 0] += 2.0
        assert snr_field(values, labels)[0] == pytest.approx(1.0, rel=0.05)

    def test_multiclass(self):
        rng = np.random.default_rng(2)
        values = rng.normal(0, 1, (300, 4))
        labels = np.repeat([0, 1, 2], 100)
        for c in range(3):
            values[labels == c, 2] += 2.0 * c
        field = snr_field(values, labels)
        assert field.argmax() == 2

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            snr_field(np.zeros((10, 3)), np.zeros(10))

    def test_2d_points(self):
        rng = np.random.default_rng(3)
        values = rng.normal(0, 1, (200, 6, 8))
        labels = np.repeat([0, 1], 100)
        values[labels == 1, 3, 5] += 4.0
        field = snr_field(values, labels)
        assert field.shape == (6, 8)
        assert np.unravel_index(field.argmax(), field.shape) == (3, 5)


class TestSnrReport:
    def test_on_simulated_traces(self):
        acq = Acquisition(seed=9)
        trace_set = acq.capture_instruction_set(["ADC", "LDS"], 60, 3)
        report = snr_report(trace_set)
        assert report["field"].shape == (trace_set.n_samples,)
        assert report["max"] > 1.0          # a cross-group pair leaks hard
        assert 0.0 < report["exploitable"] <= 1.0
        # The strongest leakage sits in the execute cycle of the window.
        assert report["argmax"][0] >= 100

    def test_cwt_mode(self):
        acq = Acquisition(seed=9)
        trace_set = acq.capture_instruction_set(["ADC", "LDS"], 40, 2)
        report = snr_report(trace_set, use_cwt=True)
        assert report["field"].shape == (50, trace_set.n_samples)
