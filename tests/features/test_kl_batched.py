"""Parity tests: batched training-side KL/selection paths vs serial references."""

import itertools

import numpy as np
import pytest

from repro.features import (
    DnvpSelector,
    StackedClassStats,
    WaveletStats,
    between_class_kl,
    between_class_kl_matrix,
    select_all_pairs,
    within_class_kl,
    within_class_kl_batched,
    within_class_kl_reference,
)


def _random_stats(rng, n_programs=4, shape=(6, 17), n_per_program=30):
    images = rng.normal(0, 1, (n_programs * n_per_program,) + shape)
    pids = np.repeat(np.arange(n_programs), n_per_program)
    # Inject per-program drift so the within field is non-trivial.
    for pid in range(n_programs):
        images[pids == pid] += 0.3 * pid * rng.normal(0, 1, shape)
    return WaveletStats.from_images(images, pids)


def _random_class_stats(rng, n_classes=5, shape=(6, 17)):
    stats = {}
    for code in range(n_classes):
        images = rng.normal(code * 0.2, 1.0 + 0.1 * code, (40,) + shape)
        pids = np.repeat([0, 1], 20)
        stats[f"C{code}"] = WaveletStats.from_images(images, pids)
    return stats


#: Parity budget for the fused symmetric (Jeffreys) kernel: the log-free
#: factorization is algebraically identical to the two-``gaussian_kl``
#: composition but rounds differently, ~1e-15 absolute on O(1) fields —
#: three orders of magnitude inside the 1e-9 acceptance budget.
FUSED_ATOL = 1e-12
FUSED_RTOL = 1e-10


def assert_fused_parity(fast, reference):
    np.testing.assert_allclose(
        fast, reference, rtol=FUSED_RTOL, atol=FUSED_ATOL
    )


class TestWithinClassBatched:
    @pytest.mark.parametrize("n_programs", [2, 3, 5, 9])
    def test_matches_reference(self, n_programs):
        rng = np.random.default_rng(n_programs)
        stats = _random_stats(rng, n_programs=n_programs)
        reference = within_class_kl_reference(stats)
        batched = within_class_kl_batched(stats)
        assert_fused_parity(batched, reference)

    def test_asymmetric_variant_bit_exact(self):
        """The plain-KL batched path keeps the reference arithmetic."""
        rng = np.random.default_rng(7)
        stats = _random_stats(rng, n_programs=4)
        np.testing.assert_array_equal(
            within_class_kl_batched(stats, symmetric=False),
            within_class_kl_reference(stats, symmetric=False),
        )

    def test_single_program_zero(self):
        rng = np.random.default_rng(8)
        stats = _random_stats(rng, n_programs=1)
        np.testing.assert_array_equal(
            within_class_kl_batched(stats), np.zeros_like(stats.mean)
        )

    def test_zero_variance_floor(self):
        """Degenerate (zero-variance) program stats stay finite."""
        rng = np.random.default_rng(14)
        stats = _random_stats(rng, n_programs=3)
        stats.program_vars[1] = 0.0
        batched = within_class_kl_batched(stats)
        assert np.isfinite(batched).all()
        assert_fused_parity(batched, within_class_kl_reference(stats))

    def test_blocked_asymmetric_evaluation_matches(self, monkeypatch):
        """REPRO_KL_BLOCK_PAIRS bounds memory without changing results."""
        rng = np.random.default_rng(9)
        stats = _random_stats(rng, n_programs=6)
        full = within_class_kl_batched(stats, symmetric=False)
        monkeypatch.setenv("REPRO_KL_BLOCK_PAIRS", "1")
        blocked = within_class_kl_batched(stats, symmetric=False)
        np.testing.assert_array_equal(blocked, full)

    def test_dispatch_follows_env_flag(self, monkeypatch):
        rng = np.random.default_rng(10)
        stats = _random_stats(rng, n_programs=3)
        monkeypatch.setenv("REPRO_BATCHED_TRAIN", "0")
        forced_reference = within_class_kl(stats)
        monkeypatch.setenv("REPRO_BATCHED_TRAIN", "1")
        forced_batched = within_class_kl(stats)
        assert_fused_parity(forced_batched, forced_reference)


class TestGroupedFromImages:
    """Balanced grouped-reduction statistics vs the masked-slice loop."""

    def test_balanced_matches_masked_loop(self):
        rng = np.random.default_rng(16)
        images = rng.normal(1.5, 0.8, (24, 5, 9)).astype(np.float32)
        pids = np.repeat(np.arange(8), 3)
        stats = WaveletStats.from_images(images, pids)
        images64 = images.astype(np.float64)
        for row, pid in enumerate(np.unique(pids)):
            block = images64[pids == pid]
            np.testing.assert_array_equal(
                stats.program_means[row], block.mean(axis=0)
            )
            np.testing.assert_array_equal(
                stats.program_vars[row], block.var(axis=0)
            )
        # Pooled moments come from the per-program moments (balanced
        # mean of means / law of total variance) — equal to the direct
        # reductions up to float64 summation order.
        np.testing.assert_allclose(
            stats.mean, images64.mean(axis=0), rtol=1e-12
        )
        np.testing.assert_allclose(
            stats.var, images64.var(axis=0), rtol=1e-12
        )

    def test_unsorted_program_ids(self):
        rng = np.random.default_rng(17)
        images = rng.normal(0, 1, (12, 3, 4))
        pids = np.array([2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1])
        stats = WaveletStats.from_images(images, pids)
        for row, pid in enumerate([0, 1, 2]):
            np.testing.assert_array_equal(
                stats.program_means[row], images[pids == pid].mean(axis=0)
            )

    def test_unbalanced_falls_back(self):
        rng = np.random.default_rng(18)
        images = rng.normal(0, 1, (11, 3, 4))
        pids = np.array([0] * 5 + [1] * 6)
        stats = WaveletStats.from_images(images, pids)
        np.testing.assert_array_equal(
            stats.program_means[1], images[5:].mean(axis=0)
        )
        np.testing.assert_array_equal(stats.var, images.var(axis=0))


class TestBetweenClassMatrix:
    def test_rows_match_per_pair_calls(self):
        rng = np.random.default_rng(11)
        stats = _random_class_stats(rng, n_classes=5)
        names = list(stats)
        stacked = StackedClassStats.from_stats(stats, names)
        matrix = between_class_kl_matrix(stacked)
        pairs = list(itertools.combinations(names, 2))
        assert matrix.shape[0] == len(pairs)
        for row, (name_a, name_b) in enumerate(pairs):
            assert_fused_parity(
                matrix[row], between_class_kl(stats[name_a], stats[name_b])
            )

    def test_pair_indices_are_combinations_order(self):
        stacked = StackedClassStats(
            names=("a", "b", "c", "d"),
            means=np.zeros((4, 2, 3)),
            vars=np.ones((4, 2, 3)),
        )
        rows_i, rows_j = stacked.pair_indices()
        assert list(zip(rows_i.tolist(), rows_j.tolist())) == list(
            itertools.combinations(range(4), 2)
        )

    def test_blocked_asymmetric_evaluation_matches(self, monkeypatch):
        rng = np.random.default_rng(12)
        stacked = StackedClassStats.from_stats(_random_class_stats(rng, 6))
        full = between_class_kl_matrix(stacked, symmetric=False)
        monkeypatch.setenv("REPRO_KL_BLOCK_PAIRS", "2")
        np.testing.assert_array_equal(
            between_class_kl_matrix(stacked, symmetric=False), full
        )

    def test_asymmetric_rows_bit_exact(self):
        rng = np.random.default_rng(15)
        stats = _random_class_stats(rng, n_classes=4)
        names = list(stats)
        matrix = between_class_kl_matrix(
            StackedClassStats.from_stats(stats, names), symmetric=False
        )
        for row, (name_a, name_b) in enumerate(
            itertools.combinations(names, 2)
        ):
            np.testing.assert_array_equal(
                matrix[row],
                between_class_kl(stats[name_a], stats[name_b], symmetric=False),
            )


class TestDnvpSelectorParity:
    @pytest.fixture(scope="class")
    def stats(self):
        return _random_class_stats(np.random.default_rng(13), n_classes=5)

    def test_fit_matches_fit_reference(self, stats):
        fast = DnvpSelector(kl_threshold="auto:0.6", top_k=4).fit(
            stats, batched=True
        )
        slow = DnvpSelector(kl_threshold="auto:0.6", top_k=4).fit_reference(stats)
        assert fast.points == slow.points
        assert fast.pair_points == slow.pair_points
        for sel_fast, sel_slow in zip(fast.pair_selections, slow.pair_selections):
            assert (sel_fast.class_a, sel_fast.class_b) == (
                sel_slow.class_a,
                sel_slow.class_b,
            )
            assert_fused_parity(sel_fast.between_field, sel_slow.between_field)
            assert sel_fast.relaxed == sel_slow.relaxed

    def test_env_flag_forces_reference(self, stats, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED_TRAIN", "0")
        forced = DnvpSelector(kl_threshold="auto:0.6", top_k=4).fit(stats)
        slow = DnvpSelector(kl_threshold="auto:0.6", top_k=4).fit_reference(stats)
        assert forced.points == slow.points

    def test_select_all_pairs_parallel_matches_serial(self, stats):
        serial = select_all_pairs(stats, kl_threshold="auto:0.6", n_jobs=1)
        pooled = select_all_pairs(stats, kl_threshold="auto:0.6", n_jobs=2)
        assert [s.points for s in serial] == [s.points for s in pooled]
        assert [(s.class_a, s.class_b) for s in serial] == [
            (s.class_a, s.class_b) for s in pooled
        ]
