"""Suite-wide fixtures.

The run ledger (:mod:`repro.obs.ledger`) is on by default so real
entrypoint invocations always leave a history — but tests invoke those
entrypoints' ``main()`` constantly, and each would append a record under
the working directory.  Disable it globally; ledger tests opt back in
with ``monkeypatch.setenv("REPRO_LEDGER", "1")`` plus an explicit
``REPRO_LEDGER_DIR`` under ``tmp_path``.
"""

import pytest


@pytest.fixture(autouse=True)
def _no_ledger_writes(monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER", "0")
    yield
