"""Coverage for small public helpers not exercised elsewhere."""

import numpy as np
import pytest

from repro.core.malware import GoldenReference
from repro.core.sequence import SequenceDisassembler
from repro.dsp import CWT
from repro.isa import assemble_line
from repro.isa.disasm import iter_decode
from repro.isa.operands import OperandKind, is_register
from repro.ml import GaussianHMM
from repro.power import Acquisition, PowerModel
from repro.sim import AvrCpu


class TestIsaHelpers:
    def test_iter_decode_addresses(self):
        words = []
        for line in ("nop", "lds r4, 0x0100", "nop"):
            words.extend(assemble_line(line).encode())
        decoded = list(iter_decode(words))
        assert [addr for addr, _ in decoded] == [0, 1, 3]
        assert decoded[1][1].spec.key == "LDS"

    def test_is_register_kinds(self):
        assert is_register(OperandKind.REG)
        assert is_register(OperandKind.REG_PAIR_HIGH)
        assert not is_register(OperandKind.IMM8)
        assert not is_register(OperandKind.REL7)

    def test_cpu_decode_at_caches(self):
        cpu = AvrCpu("nop\nadd r1, r2")
        first = cpu.decode_at(1)
        second = cpu.decode_at(1)
        assert first is second
        assert first[0].spec.key == "ADD"


class TestDspHelpers:
    def test_cwt_flatten(self):
        cwt = CWT(64)
        images = cwt.transform(np.zeros((3, 64)))
        flat = cwt.flatten(images)
        assert flat.shape == (3, cwt.config.n_scales * 64)


class TestPowerHelpers:
    def test_slot_starts(self):
        model = PowerModel()
        starts = model.slot_starts(4)
        spc = model.geometry.samples_per_cycle
        assert starts == [0, spc, 2 * spc, 3 * spc]


class TestCoreHelpers:
    def test_golden_from_instructions(self):
        instructions = [assemble_line("add r1, r2")]
        golden = GoldenReference.from_instructions(instructions)
        assert golden.expected_tuple(0) == ("ADD", 1, 2)

    def test_hmm_emission_log_likelihood(self):
        hmm = GaussianHMM(n_states=2)
        X = np.concatenate(
            [np.random.default_rng(0).normal(m, 0.5, (50, 1)) for m in (0, 5)]
        )
        hmm.fit_emissions(X, np.repeat([0, 1], 50))
        log_like = hmm.emission_log_likelihood(np.array([[0.0], [5.0]]))
        assert log_like.shape == (2, 2)
        assert log_like[0, 0] > log_like[0, 1]
        assert log_like[1, 1] > log_like[1, 0]


class TestWorkloadHelpers:
    def test_capture_register_sets_pair(self):
        from repro.experiments.workloads import capture_register_sets

        acq = Acquisition(seed=71)
        rd, rr = capture_register_sets(acq, (2, 20), 8, 2)
        assert rd.label_names == ("Rd2", "Rd20")
        assert rr.label_names == ("Rr2", "Rr20")

    def test_capture_group_instruction_set(self):
        from repro.experiments.scales import SMOKE
        from repro.experiments.workloads import capture_group_instruction_set

        acq = Acquisition(seed=72)
        ts = capture_group_instruction_set(acq, 8, 8, 2, scale=SMOKE)
        assert len(ts.label_names) == SMOKE.classes_per_group_cap

    def test_sequence_prior_from_key_sequences(self):
        # minimal hierarchy via the fixture-free path
        from repro.features import FeatureConfig
        from repro.core import SideChannelDisassembler
        from repro.ml import QDA

        acq = Acquisition(seed=73)
        dis = SideChannelDisassembler(
            FeatureConfig(kl_threshold="auto:0.9", n_components=5),
            classifier_factory=QDA,
        )
        from repro.power.acquisition import random_instance
        from repro.power.dataset import TraceSet

        w1, p1 = acq.capture_class("ADD", 24, 2)
        w5, p5 = acq.capture_class("LDS", 24, 2)
        group_set = TraceSet(
            np.concatenate([w1, w5]),
            np.repeat([0, 1], 24),
            ("G1", "G5"),
            np.concatenate([p1, p5]),
        )
        dis.fit_group_level(group_set)
        dis.fit_instruction_level(
            1, acq.capture_instruction_set(["ADD", "EOR"], 24, 2)
        )
        seq = SequenceDisassembler(dis).fit_prior_from_sequences(
            [["ADD", "EOR", "ADD", "EOR"]]
        )
        T = seq.hmm.transitions_
        add, eor = seq.classes.index("ADD"), seq.classes.index("EOR")
        assert T[add, eor] > T[add, add]
