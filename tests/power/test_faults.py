"""Fault-injection substrate: determinism, artifacts, composition."""

import numpy as np
import pytest

from repro.power import FaultContext, FaultInjector, Oscilloscope
from repro.power.faults import (
    BaselineDriftFault,
    BurstNoiseFault,
    ClippingFault,
    DropoutFault,
    FlatlineFault,
    TriggerMisfireFault,
    default_faults,
)

CTX = FaultContext()


def clean_batch(n=16, length=315, seed=0):
    """Sine + mild noise, comfortably inside the vertical window."""
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = 5.0 + 2.0 * np.sin(2 * np.pi * t / 63.0)
    return (base + rng.normal(0.0, 0.3, (n, length))).astype(np.float32)


class TestFaultContext:
    def test_span(self):
        assert CTX.span == pytest.approx(36.0)

    def test_from_scope(self):
        scope = Oscilloscope(full_scale=(-2.0, 4.0))
        ctx = FaultContext.from_scope(scope)
        assert ctx.full_scale == (-2.0, 4.0)
        assert ctx.samples_per_cycle == scope.geometry.samples_per_cycle


class TestFaultFamilies:
    """Each family must leave its characteristic, detectable artifact."""

    def apply(self, fault, seed=3):
        window = clean_batch(n=1)[0].astype(np.float64)
        out = fault.apply(window, np.random.default_rng(seed), CTX)
        assert out.shape == window.shape
        assert np.isfinite(out).all()  # digitizers emit garbage, not NaN
        return window, out

    def test_clip_rails(self):
        _, out = self.apply(ClippingFault())
        low, high = CTX.full_scale
        eps = 0.004 * CTX.span
        railed = (out <= low + eps) | (out >= high - eps)
        assert railed.mean() > 0.04

    def test_misfire_shifts_content(self):
        window, out = self.apply(TriggerMisfireFault())
        # Edge samples are held, interior content is displaced.
        assert not np.allclose(out, window)
        assert np.std(out) > 0.1  # not a flatline; still signal-shaped

    def test_dropout_leaves_equal_run(self):
        from repro.power.quality import _max_equal_run

        window, out = self.apply(DropoutFault())
        assert _max_equal_run(out[None, :])[0] >= 24
        assert _max_equal_run(window[None, :])[0] < 24

    def test_burst_steps_exceed_slew(self):
        window, out = self.apply(BurstNoiseFault())
        threshold = 0.18 * CTX.span
        assert (np.abs(np.diff(out)) > threshold).sum() >= 2
        assert (np.abs(np.diff(window)) > threshold).sum() == 0

    def test_flatline_collapses_std(self):
        _, out = self.apply(FlatlineFault())
        assert out.std() == pytest.approx(0.0)
        low, high = CTX.full_scale
        assert low <= out[0] <= high

    def test_drift_ramps_baseline(self):
        _, out = self.apply(BaselineDriftFault())
        # Fitted slope across the window moves > drift threshold.
        t = np.arange(len(out), dtype=np.float64)
        t -= t.mean()
        slope = (out - out.mean()) @ t / (t @ t)
        assert abs(slope) * len(out) > 0.15 * CTX.span

    def test_faults_never_mutate_input(self):
        window = clean_batch(n=1)[0].astype(np.float64)
        for fault in default_faults():
            before = window.copy()
            fault.apply(window, np.random.default_rng(0), CTX)
            np.testing.assert_array_equal(window, before)


class TestFaultInjector:
    def test_rate_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=-0.1)
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(rate=0.5, faults=())

    def test_corrupt_is_deterministic(self):
        windows = clean_batch()
        injector = FaultInjector(rate=0.5)
        out_a, applied_a = injector.corrupt(
            windows, np.random.default_rng(7), CTX
        )
        out_b, applied_b = injector.corrupt(
            windows, np.random.default_rng(7), CTX
        )
        np.testing.assert_array_equal(out_a, out_b)
        assert applied_a == applied_b

    def test_corrupt_returns_copy_and_names(self):
        windows = clean_batch()
        before = windows.copy()
        injector = FaultInjector(rate=1.0)
        out, applied = injector.corrupt(
            windows, np.random.default_rng(1), CTX
        )
        np.testing.assert_array_equal(windows, before)
        assert out.dtype == np.float32
        names = {fault.name for fault in default_faults()}
        assert all(name in names for name in applied)

    def test_rate_zero_touches_nothing(self):
        windows = clean_batch()
        out, applied = FaultInjector(rate=0.0).corrupt(
            windows, np.random.default_rng(1), CTX
        )
        np.testing.assert_array_equal(out, windows)
        assert applied == [""] * len(windows)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_RATE", raising=False)
        assert FaultInjector.from_env() is None
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.25")
        injector = FaultInjector.from_env()
        assert injector is not None and injector.rate == 0.25
        monkeypatch.setenv("REPRO_FAULT_RATE", "7")
        assert FaultInjector.from_env().rate == 1.0
