"""Oscilloscope and shift-model tests."""

import numpy as np
import pytest

from repro.power import Oscilloscope, ProgramShift, SessionShift


class TestScope:
    def test_noise_free_capture_close_to_input(self):
        scope = Oscilloscope(noise_sigma=0.0, trigger_jitter_std=0.0)
        t = np.linspace(0, 1, 2000)
        analog = 5.0 + 2.0 * np.sin(2 * np.pi * 3 * t)
        digital = scope.digitize(analog)
        assert np.abs(digital[100:-100] - analog[100:-100]).max() < 0.1

    def test_bandwidth_attenuates_high_frequency(self):
        scope = Oscilloscope(noise_sigma=0.0, bandwidth_hz=100e6)
        n = 4000
        t = np.arange(n)
        # 500 MHz tone at 2.5 GS/s = period of 5 samples
        fast = np.sin(2 * np.pi * t / 5)
        slow = np.sin(2 * np.pi * t / 200)
        fast_out = scope.digitize(fast)
        slow_out = scope.digitize(slow)
        assert fast_out.std() < 0.3 * slow_out.std()

    def test_quantization_step(self):
        scope = Oscilloscope(noise_sigma=0.0, adc_bits=4, full_scale=(0.0, 16.0))
        out = scope.digitize(np.linspace(0, 16, 1000))
        levels = np.unique(np.round(out, 6))
        assert len(levels) <= 16

    def test_clipping(self):
        scope = Oscilloscope(noise_sigma=0.0, full_scale=(-1.0, 1.0))
        out = scope.digitize(np.full(500, 99.0))
        assert out.max() <= 1.0 + 1e-6

    def test_noise_reproducible_with_rng(self):
        scope = Oscilloscope(noise_sigma=0.1)
        analog = np.zeros(500)
        a = scope.digitize(analog, np.random.default_rng(5))
        b = scope.digitize(analog, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_trigger_offset_statistics(self):
        scope = Oscilloscope(trigger_jitter_std=1.0)
        rng = np.random.default_rng(0)
        offsets = [scope.trigger_offset(rng) for _ in range(500)]
        assert abs(np.mean(offsets)) < 0.3
        assert 0.5 < np.std(offsets) < 1.5

    def test_zero_jitter(self):
        scope = Oscilloscope(trigger_jitter_std=0.0)
        assert scope.trigger_offset(np.random.default_rng(0)) == 0


class TestScopeEdgeCases:
    """Inputs at the edge of the measurement chain's envelope."""

    def test_saturated_input_rails_cleanly(self):
        # An input far beyond the window must rail at the ADC limits on
        # both sides and never produce NaN/inf or overshoot.
        scope = Oscilloscope(noise_sigma=0.0, full_scale=(-2.0, 2.0))
        square = np.where(np.arange(2000) % 200 < 100, 50.0, -50.0)
        out = scope.digitize(square)
        assert np.isfinite(out).all()
        assert out.max() <= 2.0 + 1e-6
        assert out.min() >= -2.0 - 1e-6
        # Both rails are actually reached.
        assert np.isclose(out.max(), 2.0, atol=1e-5)
        assert np.isclose(out.min(), -2.0, atol=1e-5)

    def test_quantization_exact_at_full_scale_corners(self):
        # The rails themselves must be representable codes: digitizing a
        # constant at either limit reproduces it exactly.
        scope = Oscilloscope(noise_sigma=0.0, adc_bits=8, full_scale=(-1.0, 3.0))
        np.testing.assert_allclose(
            scope.digitize(np.full(500, 3.0))[50:-50], 3.0, atol=1e-6
        )
        np.testing.assert_allclose(
            scope.digitize(np.full(500, -1.0))[50:-50], -1.0, atol=1e-6
        )

    def test_quantization_step_size_spans_window(self):
        scope = Oscilloscope(noise_sigma=0.0, adc_bits=6, full_scale=(0.0, 63.0))
        out = scope.digitize(np.linspace(0.0, 63.0, 4000))
        levels = np.unique(np.round(out.astype(np.float64), 6))
        assert len(levels) == 64
        steps = np.diff(levels)
        np.testing.assert_allclose(steps, steps[0], rtol=1e-5)

    def test_zero_amplitude_trace_survives_chain(self):
        # A dead-flat all-zeros trace: the filter/quantizer must return
        # flat zeros, not ringing or NaN (guards the flatline detector's
        # assumptions about what the clean chain can output).
        scope = Oscilloscope(noise_sigma=0.0)
        out = scope.digitize(np.zeros(1000))
        assert np.isfinite(out).all()
        # Flat in, flat out (one code), within half a quantization step
        # of zero.
        assert len(np.unique(out)) == 1
        low, high = scope.full_scale
        step = (high - low) / ((1 << scope.adc_bits) - 1)
        np.testing.assert_allclose(out, 0.0, atol=step / 2 + 1e-9)
        assert out.dtype == np.float32

    def test_single_sample_window_screens_without_crash(self):
        from repro.power import FaultContext, TraceScreener

        report = TraceScreener().screen(np.zeros((3, 1)), FaultContext())
        assert len(report.passed) == 3


class TestShifts:
    def test_program_shift_gain_dc(self):
        shift = ProgramShift(dc_offset=2.0, gain=1.5)
        out = shift.apply(np.ones(300), samples_per_cycle=157)
        np.testing.assert_allclose(out, 3.5, atol=1e-9)

    def test_wobble_period(self):
        shift = ProgramShift(wobble_amplitude=1.0, wobble_period_cycles=2.0)
        baseline = shift.baseline(157 * 4, samples_per_cycle=157)
        # one full period spans 2 cycles = 314 samples
        np.testing.assert_allclose(baseline[0], baseline[314], atol=1e-6)

    def test_tilt_boosts_low_frequencies_only(self):
        shift = ProgramShift(tilt=1.0, tilt_sigma_samples=2.0)
        n = 4000
        t = np.arange(n)
        slow = np.sin(2 * np.pi * t / 400)
        fast = np.sin(2 * np.pi * t / 4)
        slow_out = shift.apply(slow, 157)
        fast_out = shift.apply(fast, 157)
        assert slow_out.std() > 1.8 * slow.std()
        assert fast_out.std() < 1.1 * fast.std()

    def test_sampled_shifts_differ(self):
        rng = np.random.default_rng(1)
        a = ProgramShift.sample(rng)
        b = ProgramShift.sample(rng)
        assert a.dc_offset != b.dc_offset

    def test_session_apply(self):
        session = SessionShift(gain=2.0, offset=-1.0)
        out = session.apply(np.ones(100))
        np.testing.assert_allclose(out, 1.0)

    def test_session_tilt_mechanism_matches_program(self):
        rng = np.random.default_rng(2)
        trace = rng.normal(0, 1, 1000)
        session = SessionShift(tilt=0.8)
        program = ProgramShift(tilt=0.8)
        np.testing.assert_allclose(
            session.apply(trace),
            program.apply(trace, 157) - program.baseline(1000, 157),
            atol=1e-9,
        )
