"""Quality screening: detectors, retry policy, acquisition integration."""

import numpy as np
import pytest

from repro.power import (
    Acquisition,
    FaultContext,
    FaultInjector,
    QualityConfig,
    RetryPolicy,
    ScreeningStats,
    TraceScreener,
)
from repro.power.quality import ScreenReport, _max_equal_run

CTX = FaultContext()


def clean_batch(n=16, length=315, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = 5.0 + 2.0 * np.sin(2 * np.pi * t / 63.0)
    return base + rng.normal(0.0, 0.3, (n, length))


class TestDetectors:
    """Each fault family's artifact must trip its matched detector."""

    def screen_with_bad_row(self, corrupt_row):
        windows = clean_batch()
        windows[0] = corrupt_row(windows[0])
        report = TraceScreener().screen(windows, CTX)
        assert not report.passed[0]
        assert report.passed[1:].all()
        return report.reasons[0]

    def test_nonfinite(self):
        def corrupt(row):
            row[7] = np.nan
            return row

        assert "nonfinite" in self.screen_with_bad_row(corrupt)

    def test_clip(self):
        reasons = self.screen_with_bad_row(
            lambda row: np.clip(row * 10.0 + 20.0, *CTX.full_scale)
        )
        assert "clip" in reasons

    def test_flatline(self):
        reasons = self.screen_with_bad_row(
            lambda row: np.full_like(row, 2.0)
        )
        assert "flatline" in reasons

    def test_dropout(self):
        def corrupt(row):
            row[50:110] = row[50]
            return row

        assert "dropout" in self.screen_with_bad_row(corrupt)

    def test_burst(self):
        def corrupt(row):
            row[100:108] += np.array([12.0, -12.0] * 4)
            return row

        assert "burst" in self.screen_with_bad_row(corrupt)

    def test_drift(self):
        def corrupt(row):
            return row + np.linspace(-4.0, 4.0, len(row))

        assert "drift" in self.screen_with_bad_row(corrupt)

    def test_misfire(self):
        def corrupt(row):
            return np.roll(row, 80)

        assert "misfire" in self.screen_with_bad_row(corrupt)

    def test_clean_batch_fully_passes(self):
        report = TraceScreener().screen(clean_batch(n=32), CTX)
        assert report.passed.all()
        assert report.n_flagged == 0
        assert report.counts() == {}

    def test_desync_needs_enough_rows(self):
        # Below desync_min_rows the self-calibrated misfire detector
        # stays off (a median of 4 rows is not a template).
        windows = clean_batch(n=4)
        windows[0] = np.roll(windows[0], 80)
        report = TraceScreener().screen(windows, CTX)
        assert "misfire" not in report.reasons[0]

    def test_fixed_template_overrides_batch_median(self):
        template = clean_batch(n=1, seed=9)[0]
        screener = TraceScreener(template=template)
        windows = clean_batch(n=2)  # too few rows to self-calibrate
        windows[0] = np.roll(windows[0], 80)
        report = screener.screen(windows, CTX)
        assert "misfire" in report.reasons[0]
        assert report.passed[1]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            TraceScreener().screen(np.zeros(8), CTX)

    def test_max_equal_run(self):
        rows = np.array(
            [[1.0, 2.0, 3.0, 4.0], [5.0, 5.0, 5.0, 6.0], [7.0, 7.0, 8.0, 8.0]]
        )
        np.testing.assert_array_equal(_max_equal_run(rows), [1, 3, 2])


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=2.0, max_backoff=3.0)
        assert policy.delay(0) == 0.0
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0
        assert policy.delay(3) == 2.0
        assert policy.delay(4) == 3.0  # capped
        assert RetryPolicy(backoff_base=0.0).delay(5) == 0.0

    def test_wait_uses_hook(self):
        slept = []
        policy = RetryPolicy(backoff_base=0.25, sleep=slept.append)
        assert policy.wait(2) == 0.5
        assert slept == [0.5]
        # The simulated-bench default never sleeps but still reports.
        assert RetryPolicy(backoff_base=0.25).wait(2) == 0.5

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RETRIES", "5")
        monkeypatch.setenv("REPRO_FAULT_BACKOFF", "1.5")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 5
        assert policy.backoff_base == 1.5


class TestScreeningStats:
    def test_merge_and_rates(self):
        a = ScreeningStats(
            n_captured=10, n_faulted=2, n_flagged=2, n_retried=2,
            n_quarantined=1, n_kept=9, reasons={"clip": 2},
        )
        b = ScreeningStats(
            n_captured=10, n_flagged=1, n_kept=10, reasons={"clip": 1, "burst": 1},
        )
        a.merge(b)
        assert a.n_captured == 20 and a.n_kept == 19
        assert a.reasons == {"clip": 3, "burst": 1}
        assert a.quarantine_rate == pytest.approx(0.05)
        assert ScreeningStats().quarantine_rate == 0.0
        assert a.as_dict()["reasons"] == {"clip": 3, "burst": 1}


class TestAcquisitionIntegration:
    """The capture loop: inject → screen → retry → quarantine → report."""

    def test_clean_capture_has_zero_false_positives(self):
        # The conservative-thresholds promise: screening an un-faulted
        # capture must not flag (and certainly not drop) anything.
        acq = Acquisition(seed=5, screener=True)
        windows, _ = acq.capture_class("ADD", 24, 3)
        stats = acq.screening_stats["ADD"]
        assert stats.n_flagged == 0
        assert stats.n_quarantined == 0
        assert stats.n_kept == len(windows) == 24

    def test_faulted_capture_detects_retries_and_keeps_count(self):
        acq = Acquisition(
            seed=5, faults=FaultInjector(rate=0.3), screener=True
        )
        windows, pids = acq.capture_class("ADD", 24, 3)
        stats = acq.screening_stats["ADD"]
        assert stats.n_faulted > 0
        assert stats.n_flagged > 0
        assert stats.n_retried > 0
        assert stats.n_kept == len(windows) == len(pids)
        assert stats.n_kept + stats.n_quarantined == stats.n_captured == 24
        assert stats.reasons  # detector codes were recorded
        report = acq.screening_report()
        assert report["ADD"]["n_captured"] == 24

    def test_faulted_capture_is_deterministic(self):
        def capture():
            acq = Acquisition(
                seed=5, faults=FaultInjector(rate=0.3), screener=True
            )
            return acq.capture_class("ADD", 24, 3)

        windows_a, pids_a = capture()
        windows_b, pids_b = capture()
        np.testing.assert_array_equal(windows_a, windows_b)
        np.testing.assert_array_equal(pids_a, pids_b)

    def test_screened_dataset_exposes_stats_in_meta(self):
        acq = Acquisition(
            seed=5, faults=FaultInjector(rate=0.3), screener=True
        )
        ts = acq.capture_instruction_set(["ADD", "EOR"], 16, 2)
        screening = ts.screening
        assert set(screening) == {"ADD", "EOR"}
        assert screening["ADD"]["n_captured"] == 16
        # Labels track surviving windows even when quarantine dropped rows.
        assert len(ts.traces) == len(ts.labels) == len(ts.program_ids)

    def test_screener_auto_enables_with_faults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_SCREEN", raising=False)
        acq = Acquisition(seed=5, faults=FaultInjector(rate=0.3))
        assert acq.screener is not None
        monkeypatch.setenv("REPRO_FAULT_SCREEN", "0")
        acq = Acquisition(seed=5, faults=FaultInjector(rate=0.3))
        assert acq.screener is None
        # And off by default when no faults are injected.
        monkeypatch.delenv("REPRO_FAULT_SCREEN", raising=False)
        assert Acquisition(seed=5).screener is None

    def test_retry_zero_quarantines_instead(self):
        acq = Acquisition(
            seed=5,
            faults=FaultInjector(rate=0.4),
            screener=True,
            retry_policy=RetryPolicy(max_attempts=0),
        )
        windows, _ = acq.capture_class("ADD", 24, 3)
        stats = acq.screening_stats["ADD"]
        assert stats.n_retried == 0
        assert stats.n_quarantined == stats.n_flagged > 0
        assert len(windows) == 24 - stats.n_quarantined

    def test_mixed_program_labels_track_quarantine(self):
        acq = Acquisition(
            seed=5,
            faults=FaultInjector(rate=0.4),
            screener=True,
            retry_policy=RetryPolicy(max_attempts=0),
        )
        ts = acq.capture_mixed_program(["ADD", "EOR"], 24)
        label = "mixed:ADD,EOR"
        stats = acq.screening_stats[label]
        assert stats.n_quarantined > 0
        assert len(ts.traces) == len(ts.labels) == stats.n_kept
        assert ts.screening[label]["n_quarantined"] == stats.n_quarantined
