"""Separability-ordering calibration tests.

The substitution argument in DESIGN.md §2 rests on the synthetic side
channel having the paper's *information ordering*: cross-group
differences are the largest, instruction and register differences are
both strong (the paper reports ~99.5 % SR for both levels), and
data-dependent terms sit near the noise floor.

These tests verify that ordering directly on noiseless model renderings
(identical contexts, only the quantity under test varies), so a
regression in the power model's calibration fails fast and explains
itself, without running full classification experiments.
"""

import numpy as np
import pytest

from repro.power import PowerModel
from repro.sim import AvrCpu


@pytest.fixture(scope="module")
def model():
    return PowerModel()


def window_of(model, line, index=1, **regs):
    """Noiseless profiling window of ``line`` between two NOPs."""
    cpu = AvrCpu(f"nop\n{line}\nnop")
    for name, value in regs.items():
        cpu.state.set_reg(int(name[1:]), value)
    events = cpu.run()
    trace = model.render_events(events)
    return model.window(trace, index)


class TestSeparabilityOrdering:
    def test_groups_dominate_instructions(self, model):
        adc = window_of(model, "adc r1, r2")
        and_ = window_of(model, "and r1, r2")
        lds = window_of(model, "lds r1, 0x0200")
        within_group = np.linalg.norm(adc - and_)
        across_group = np.linalg.norm(adc - lds)
        assert across_group > 1.1 * within_group

    def test_register_gap_strong(self, model):
        """Registers leak strongly (the paper recovers Rd/Rr at ~99.6 %),
        on the same order as instruction differences."""
        adc = window_of(model, "adc r1, r2")
        and_ = window_of(model, "and r1, r2")
        other_regs = window_of(model, "adc r9, r22")
        instruction_gap = np.linalg.norm(adc - and_)
        register_gap = np.linalg.norm(adc - other_regs)
        assert register_gap > 0.3 * instruction_gap
        assert register_gap < 3.0 * instruction_gap

    def test_registers_dominate_data(self, model):
        base = window_of(model, "adc r1, r2", r1=0x00, r2=0x00)
        other_reg = window_of(model, "adc r3, r2", r3=0x00, r2=0x00)
        other_data = window_of(model, "adc r1, r2", r1=0xFF, r2=0xFF)
        register_gap = np.linalg.norm(base - other_reg)
        data_gap = np.linalg.norm(base - other_data)
        assert register_gap > 2.0 * data_gap
        assert data_gap > 0.0  # data dependence exists (HW/HD terms)

    def test_adjacent_registers_separable(self, model):
        """Row/column one-hot decode: r16 vs r17 differ as much as r16
        vs r24 (no ordinal crowding)."""
        r16 = window_of(model, "mov r16, r2")
        r17 = window_of(model, "mov r17, r2")
        r24 = window_of(model, "mov r24, r2")
        near = np.linalg.norm(r16 - r17)
        far = np.linalg.norm(r16 - r24)
        assert near > 0.4 * far

    def test_memory_instructions_draw_most(self, model):
        sec = window_of(model, "sec")
        lds = window_of(model, "lds r1, 0x0200")
        execute = slice(157, 315)
        assert lds[execute].mean() > sec[execute].mean() + 0.3

    def test_noise_floor_below_instruction_gap(self, model):
        """The scope's noise must not drown the within-group signal."""
        from repro.power import Oscilloscope

        adc = window_of(model, "adc r1, r2")
        and_ = window_of(model, "and r1, r2")
        gap = np.abs(adc - and_).max()
        assert gap > 3.0 * Oscilloscope().noise_sigma
