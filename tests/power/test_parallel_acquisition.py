"""Determinism of parallel acquisition and the batched renderer.

The parallelization contract is strict: captures are partitioned by
per-file sub-seeds that are derived *before* any work is dispatched, so
the output must be bit-for-bit identical for any worker count.
"""

import numpy as np
import pytest

from repro.power.acquisition import Acquisition, RegisterSampler
from repro.sim.cpu import AvrCpu
from repro.util.parallel import parallel_map, resolve_n_jobs


def _module_double(x):
    return 2 * x


class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(_module_double, range(7), n_jobs=1) == [
            0, 2, 4, 6, 8, 10, 12,
        ]

    def test_pool_matches_serial(self):
        items = list(range(8))
        serial = parallel_map(_module_double, items, n_jobs=1)
        pooled = parallel_map(_module_double, items, n_jobs=3)
        assert pooled == serial

    def test_unpicklable_fn_falls_back_to_serial(self):
        state = {"offset": 5}
        result = parallel_map(lambda x: x + state["offset"], [1, 2], n_jobs=4)
        assert result == [6, 7]

    def test_resolve_n_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_JOBS", raising=False)
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(0) >= 1
        monkeypatch.setenv("REPRO_N_JOBS", "4")
        assert resolve_n_jobs(None) == 4
        monkeypatch.setenv("REPRO_N_JOBS", "junk")
        assert resolve_n_jobs(None) == 1


class TestEffectiveWorkers:
    """Workload-size heuristic: small captures must not pay pool overhead."""

    def test_small_workload_degrades_to_serial(self):
        from repro.util.parallel import effective_workers

        assert effective_workers(4, 2, min_items_per_worker=4) == 1
        assert effective_workers(3, 8, min_items_per_worker=4) == 1

    def test_large_workload_keeps_requested_workers(self):
        from repro.util.parallel import effective_workers

        assert effective_workers(32, 4, min_items_per_worker=4) == 4
        assert effective_workers(9, 4, min_items_per_worker=4) == 2

    def test_min_one_disables_heuristic(self):
        from repro.util.parallel import effective_workers

        assert effective_workers(2, 8, min_items_per_worker=1) == 8

    def test_serial_requests_stay_serial(self):
        from repro.util.parallel import effective_workers

        assert effective_workers(100, 1, min_items_per_worker=4) == 1
        assert effective_workers(0, 8, min_items_per_worker=4) == 1

    def test_parallel_map_threshold_still_matches_serial(self):
        items = list(range(6))
        serial = parallel_map(_module_double, items, n_jobs=1)
        capped = parallel_map(
            _module_double, items, n_jobs=4, min_items_per_worker=4
        )
        assert capped == serial

    def test_capture_class_env_knob_bit_exact(self, monkeypatch):
        """REPRO_PARALLEL_MIN_FILES moves the cutover, never the data."""
        monkeypatch.setenv("REPRO_PARALLEL_MIN_FILES", "1")
        eager_w, eager_p = Acquisition(seed=44).capture_class(
            "ADC", 16, n_programs=4, n_jobs=4
        )
        monkeypatch.setenv("REPRO_PARALLEL_MIN_FILES", "100")
        capped_w, capped_p = Acquisition(seed=44).capture_class(
            "ADC", 16, n_programs=4, n_jobs=4
        )
        np.testing.assert_array_equal(eager_w, capped_w)
        np.testing.assert_array_equal(eager_p, capped_p)


class TestEnvKnobs:
    def test_env_flag_falsy_spellings(self, monkeypatch):
        from repro.util.env import env_flag

        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_flag("REPRO_TEST_KNOB", True) is True
        assert env_flag("REPRO_TEST_KNOB", False) is False
        for falsy in ("0", "false", "OFF", " Off "):
            monkeypatch.setenv("REPRO_TEST_KNOB", falsy)
            assert env_flag("REPRO_TEST_KNOB", True) is False
        monkeypatch.setenv("REPRO_TEST_KNOB", "1")
        assert env_flag("REPRO_TEST_KNOB", False) is True

    def test_env_int_fallbacks(self, monkeypatch):
        from repro.util.env import env_int

        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_int("REPRO_TEST_KNOB", 7) == 7
        monkeypatch.setenv("REPRO_TEST_KNOB", "12")
        assert env_int("REPRO_TEST_KNOB", 7) == 12
        monkeypatch.setenv("REPRO_TEST_KNOB", "junk")
        assert env_int("REPRO_TEST_KNOB", 7) == 7


class TestParallelCaptureDeterminism:
    def test_capture_class_bit_exact_across_worker_counts(self):
        serial_acq = Acquisition(seed=123)
        windows_1, pids_1 = serial_acq.capture_class(
            "ADC", 24, n_programs=4, n_jobs=1
        )
        pooled_acq = Acquisition(seed=123)
        windows_4, pids_4 = pooled_acq.capture_class(
            "ADC", 24, n_programs=4, n_jobs=4
        )
        np.testing.assert_array_equal(windows_1, windows_4)
        np.testing.assert_array_equal(pids_1, pids_4)

    def test_register_capture_bit_exact_across_worker_counts(self):
        serial = Acquisition(seed=7).capture_register_set(
            "Rd", [0, 16], 12, n_programs=2, n_jobs=1
        )
        pooled = Acquisition(seed=7).capture_register_set(
            "Rd", [0, 16], 12, n_programs=2, n_jobs=4
        )
        np.testing.assert_array_equal(serial.traces, pooled.traces)
        np.testing.assert_array_equal(serial.labels, pooled.labels)
        np.testing.assert_array_equal(serial.program_ids, pooled.program_ids)

    def test_instance_default_n_jobs_matches_serial(self):
        default = Acquisition(seed=31)
        pooled = Acquisition(seed=31, n_jobs=2)
        w_default, _ = default.capture_class("EOR", 16, n_programs=4)
        w_pooled, _ = pooled.capture_class("EOR", 16, n_programs=4)
        np.testing.assert_array_equal(w_default, w_pooled)

    def test_register_sampler_is_picklable(self):
        import pickle

        sampler = RegisterSampler(0, 5, ("ADD", "SUB"))
        clone = pickle.loads(pickle.dumps(sampler))
        rng_a, rng_b = (np.random.default_rng(2) for _ in range(2))
        assert clone(rng_a, 0).encode() == sampler(rng_b, 0).encode()


class TestBatchedRenderer:
    @pytest.fixture()
    def bench(self):
        return Acquisition(seed=55)

    def _events(self, bench, target_key, n_segments=32):
        rng = bench._rng("render-test", target_key)
        instructions, _ = bench._build_segments(
            rng, n_segments=n_segments, target_key=target_key
        )
        cpu = AvrCpu(instructions)
        bench._randomize_state(cpu, rng)
        return cpu.run(max_steps=len(instructions))

    @pytest.mark.parametrize("target_key", ["ADC", "LDS", "RJMP", "SBI"])
    def test_batched_matches_serial(self, bench, target_key):
        events = self._events(bench, target_key)
        serial = bench.model.render_events_serial(events)
        batched = bench.model.render_events(events, batched=True)
        np.testing.assert_allclose(batched, serial, rtol=1e-9, atol=1e-12)

    def test_empty_stream(self, bench):
        np.testing.assert_array_equal(
            bench.model.render_events([], batched=True),
            bench.model.render_events_serial([]),
        )

    def test_env_flag_disables_batching(self, bench, monkeypatch):
        events = self._events(bench, "ADC", n_segments=4)
        monkeypatch.setenv("REPRO_BATCHED_RENDER", "0")
        forced_serial = bench.model.render_events(events)
        np.testing.assert_array_equal(
            forced_serial, bench.model.render_events_serial(events)
        )
