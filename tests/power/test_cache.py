"""TraceCache tests."""

import numpy as np
import pytest

from repro.power import Acquisition
from repro.power.cache import TraceCache


class TestTraceCache:
    def test_miss_then_hit(self, tmp_path):
        cache = TraceCache(tmp_path)
        calls = []

        def capture():
            calls.append(1)
            return Acquisition(seed=3).capture_instruction_set(["NOP"], 8, 2)

        key = {"classes": ["NOP"], "n": 8, "seed": 3}
        first = cache.get_or_capture(key, capture)
        second = cache.get_or_capture(key, capture)
        assert len(calls) == 1
        np.testing.assert_array_equal(first.traces, second.traces)
        assert second.label_names == ("NOP",)

    def test_distinct_keys_distinct_entries(self, tmp_path):
        cache = TraceCache(tmp_path)
        a = cache.get_or_capture(
            {"n": 4}, lambda: Acquisition(seed=1).capture_instruction_set(["NOP"], 4, 2)
        )
        b = cache.get_or_capture(
            {"n": 6}, lambda: Acquisition(seed=1).capture_instruction_set(["NOP"], 6, 2)
        )
        assert len(a) == 4 and len(b) == 6
        assert cache.contains({"n": 4}) and cache.contains({"n": 6})

    def test_version_salt_invalidates(self, tmp_path):
        key = {"n": 4}
        old = TraceCache(tmp_path, version_salt="v1")
        old.get_or_capture(
            key, lambda: Acquisition(seed=1).capture_instruction_set(["NOP"], 4, 2)
        )
        fresh = TraceCache(tmp_path, version_salt="v2")
        assert not fresh.contains(key)

    def test_clear(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get_or_capture(
            {"n": 4}, lambda: Acquisition(seed=1).capture_instruction_set(["NOP"], 4, 2)
        )
        assert cache.clear() == 1
        assert not cache.contains({"n": 4})

    def test_clear_missing_directory(self, tmp_path):
        assert TraceCache(tmp_path / "nope").clear() == 0
