"""TraceSet container tests."""

import numpy as np
import pytest

from repro.power import TraceSet


def make_set(n_per_class=10, n_classes=3, n_programs=2):
    rng = np.random.default_rng(0)
    n = n_per_class * n_classes
    return TraceSet(
        traces=rng.normal(0, 1, (n, 8)).astype(np.float32),
        labels=np.repeat(np.arange(n_classes), n_per_class),
        label_names=tuple(f"C{i}" for i in range(n_classes)),
        program_ids=np.tile(
            np.repeat(np.arange(n_programs), n_per_class // n_programs),
            n_classes,
        ),
    )


class TestBasics:
    def test_lengths_validated(self):
        with pytest.raises(ValueError, match="labels length mismatch"):
            TraceSet(np.zeros((3, 4)), np.zeros(2), ("a",), np.zeros(3))
        with pytest.raises(ValueError, match="program_ids length mismatch"):
            TraceSet(np.zeros((3, 4)), np.zeros(3), ("a",), np.zeros(2))

    def test_shape_validated(self):
        with pytest.raises(ValueError, match="2-D"):
            TraceSet(np.zeros(12), np.zeros(12), ("a",), np.zeros(12))
        with pytest.raises(ValueError, match="2-D"):
            TraceSet(
                np.zeros((3, 4, 5)), np.zeros(3), ("a",), np.zeros(3)
            )

    def test_nonfinite_traces_rejected(self):
        traces = np.zeros((4, 6), dtype=np.float32)
        traces[1, 2] = np.nan
        traces[3, 0] = np.inf
        with pytest.raises(ValueError, match=r"NaN/inf in 2 row"):
            TraceSet(traces, np.zeros(4), ("a",), np.zeros(4))
        # The message names the offending rows so the capture log can be
        # cross-referenced.
        with pytest.raises(ValueError, match=r"\[1, 3\]"):
            TraceSet(traces, np.zeros(4), ("a",), np.zeros(4))

    def test_meta_sample_count_checked(self):
        with pytest.raises(ValueError, match="expected 9 samples"):
            TraceSet(
                np.zeros((3, 4)), np.zeros(3), ("a",), np.zeros(3),
                meta={"n_samples": 9},
            )
        ts = TraceSet(
            np.zeros((3, 4)), np.zeros(3), ("a",), np.zeros(3),
            meta={"n_samples": 4},
        )
        assert ts.n_samples == 4

    def test_screening_property(self):
        ts = make_set()
        assert ts.screening == {}
        stats = {"ADD": {"n_captured": 10, "n_kept": 9}}
        screened = TraceSet(
            np.zeros((2, 4)), np.zeros(2), ("ADD",), np.zeros(2),
            meta={"screening": stats},
        )
        assert screened.screening == stats
        # Defensive copy: mutating the view must not touch the meta.
        screened.screening.pop("ADD")
        assert screened.screening == stats

    def test_properties(self):
        ts = make_set()
        assert len(ts) == 30
        assert ts.n_samples == 8
        assert ts.n_classes == 3
        assert ts.key_of(0) == "C0"

    def test_class_indices(self):
        ts = make_set()
        idx = ts.class_indices("C1")
        assert np.all(ts.labels[idx] == 1)
        assert len(idx) == 10

    def test_select_mask(self):
        ts = make_set()
        subset = ts.select(ts.labels == 2)
        assert len(subset) == 10
        assert subset.label_names == ts.label_names


class TestSplits:
    def test_split_by_programs(self):
        ts = make_set()
        train, test = ts.split_by_programs([1])
        assert np.all(train.program_ids == 0)
        assert np.all(test.program_ids == 1)
        assert len(train) + len(test) == len(ts)

    def test_split_random_stratified(self):
        ts = make_set(n_per_class=20)
        rng = np.random.default_rng(1)
        train, test = ts.split_random(0.75, rng)
        for code in range(3):
            assert (train.labels == code).sum() == 15
            assert (test.labels == code).sum() == 5

    def test_concatenate(self):
        a, b = make_set(), make_set()
        merged = TraceSet.concatenate([a, b])
        assert len(merged) == 60

    def test_concatenate_label_mismatch(self):
        a = make_set()
        b = make_set()
        b.label_names = ("X", "Y", "Z")
        with pytest.raises(ValueError):
            TraceSet.concatenate([a, b])

    def test_concatenate_empty(self):
        with pytest.raises(ValueError):
            TraceSet.concatenate([])


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        ts = make_set()
        path = tmp_path / "traces.npz"
        ts.save(path)
        loaded = TraceSet.load(path)
        np.testing.assert_array_equal(loaded.traces, ts.traces)
        np.testing.assert_array_equal(loaded.labels, ts.labels)
        assert loaded.label_names == ts.label_names
        assert loaded.device == ts.device
