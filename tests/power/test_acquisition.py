"""Acquisition framework tests."""

import numpy as np
import pytest

from repro.isa import OperandKind, REGISTRY
from repro.power import Acquisition, TraceSet, make_devices, random_instance
from repro.power.acquisition import (
    DEFAULT_RD_POOL,
    DEFAULT_RR_POOL,
    TARGET_SLOT,
    TEMPLATE_LENGTH,
    default_neighbor_pool,
)


class TestRandomInstance:
    def test_respects_fixed(self):
        rng = np.random.default_rng(0)
        instance = random_instance("ADD", rng, fixed={0: 7})
        assert instance.values[0] == 7

    def test_two_reg_operands_distinct(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            instance = random_instance("EOR", rng)
            assert instance.values[0] != instance.values[1]

    def test_branch_offset_pinned_to_zero(self):
        rng = np.random.default_rng(2)
        assert random_instance("BREQ", rng).values == (0,)
        assert random_instance("RJMP", rng).values == (0,)

    def test_jmp_targets_next_instruction(self):
        rng = np.random.default_rng(3)
        instance = random_instance("JMP", rng, word_address=10)
        assert instance.values == (12,)

    def test_lds_address_in_sram(self):
        rng = np.random.default_rng(4)
        for _ in range(50):
            address = random_instance("LDS", rng).values[1]
            assert 0x0100 <= address < 0x0900

    def test_io_avoids_reserved(self):
        rng = np.random.default_rng(5)
        for _ in range(200):
            a = random_instance("OUT", rng).values[0]
            assert a not in (0x3D, 0x3E, 0x3F)

    def test_every_class_instantiable(self):
        rng = np.random.default_rng(6)
        for key in REGISTRY:
            instance = random_instance(key, rng, word_address=4)
            instance.encode()  # must be a legal instruction


class TestCaptureShapes:
    def test_instruction_set_shapes(self):
        acq = Acquisition(seed=1)
        ts = acq.capture_instruction_set(["ADC", "AND"], 30, 3)
        assert ts.traces.shape == (60, 315)
        assert ts.label_names == ("ADC", "AND")
        assert set(ts.program_ids) == {0, 1, 2}
        assert ts.traces.dtype == np.float32

    def test_uneven_split_across_programs(self):
        acq = Acquisition(seed=1)
        windows, pids = acq.capture_class("NOP", 10, 3)
        assert len(windows) == 10
        counts = np.bincount(pids)
        assert counts.max() - counts.min() <= 1

    def test_register_set_rd(self):
        acq = Acquisition(seed=2)
        ts = acq.capture_register_set("Rd", (0, 16), 20, 2)
        assert ts.label_names == ("Rd0", "Rd16")
        assert len(ts) == 40

    def test_register_pool_compatibility(self):
        # r0 cannot be used with REG_HIGH instructions; pool must filter.
        acq = Acquisition(seed=3)
        ts = acq.capture_register_set("Rd", (0,), 10, 2)
        assert len(ts) == 10

    def test_register_role_validation(self):
        acq = Acquisition(seed=4)
        with pytest.raises(ValueError):
            acq.capture_register_set("Rx", (0,), 4, 2)

    def test_default_pools_cover_shapes(self):
        kinds = {
            REGISTRY[k].operands[0].kind for k in DEFAULT_RD_POOL
        }
        assert OperandKind.REG in kinds and OperandKind.REG_HIGH in kinds
        for key in DEFAULT_RR_POOL:
            assert REGISTRY[key].operands[1].kind is OperandKind.REG

    def test_reproducible(self):
        a = Acquisition(seed=7).capture_instruction_set(["NOP"], 12, 2)
        b = Acquisition(seed=7).capture_instruction_set(["NOP"], 12, 2)
        np.testing.assert_array_equal(a.traces, b.traces)

    def test_different_seeds_differ(self):
        a = Acquisition(seed=7).capture_instruction_set(["NOP"], 12, 2)
        b = Acquisition(seed=8).capture_instruction_set(["NOP"], 12, 2)
        assert not np.allclose(a.traces, b.traces)


class TestMixedAndProgramCapture:
    def test_mixed_program_single_shift(self):
        acq = Acquisition(seed=5)
        ts = acq.capture_mixed_program(["ADC", "AND"], 15, program_id=3)
        assert len(ts) == 30
        assert set(ts.program_ids) == {3}
        assert np.bincount(ts.labels).tolist() == [15, 15]

    def test_capture_program_windows(self):
        acq = Acquisition(seed=6)
        capture = acq.capture_program("ldi r16, 1\nadd r16, r17\nnop")
        assert capture.windows.shape == (3, 315)
        assert [i.spec.key for i in capture.instructions] == [
            "LDI", "ADD", "NOP",
        ]

    def test_reference_window_cached(self):
        acq = Acquisition(seed=7)
        a = acq.reference_window()
        b = acq.reference_window()
        assert a is b
        assert a.shape == (315,)


class TestDevices:
    def test_make_devices(self):
        train, targets = make_devices(3, seed=1)
        assert train.name == "train"
        assert [d.name for d in targets] == ["dev1", "dev2", "dev3"]
        assert len({d.gain for d in targets}) == 3

    def test_neighbor_pool_is_canonical_grouped(self):
        pool = default_neighbor_pool()
        assert "ADD" in pool and "SBR" not in pool
        assert all(REGISTRY[k].group is not None for k in pool)


class TestTemplateStructure:
    def test_template_constants(self):
        assert TEMPLATE_LENGTH == 7
        assert TARGET_SLOT == 3

    def test_segment_structure(self):
        acq = Acquisition(seed=8)
        rng = np.random.default_rng(0)
        instructions, targets = acq._build_segments(
            rng, n_segments=3, target_key="ADC"
        )
        assert len(instructions) == 21
        assert targets == [3, 10, 17]
        for start in (0, 7, 14):
            assert instructions[start].spec.key == "SBI"
            assert instructions[start + 1].spec.key == "NOP"
            assert instructions[start + 3].spec.key == "ADC"
            assert instructions[start + 5].spec.key == "NOP"
            assert instructions[start + 6].spec.key == "CBI"

    def test_no_skip_before_target(self):
        acq = Acquisition(seed=9)
        rng = np.random.default_rng(1)
        instructions, targets = acq._build_segments(
            rng, n_segments=200, target_key="ADC"
        )
        skips = {"CPSE", "SBRC", "SBRS", "SBIC", "SBIS"}
        for index in targets:
            assert instructions[index - 1].spec.semantics not in skips
