"""Power model tests: determinism, event sensitivity, geometry."""

import numpy as np
import pytest

from repro.power import DEFAULT_GEOMETRY, DeviceProfile, PowerModel, PowerModelConfig
from repro.sim import AvrCpu


def events_of(asm, **regs):
    cpu = AvrCpu(asm)
    for name, value in regs.items():
        cpu.state.set_reg(int(name[1:]), value)
    return cpu.run()


class TestGeometry:
    def test_window_is_315_samples(self):
        assert DEFAULT_GEOMETRY.window_samples == 315

    def test_render_length(self):
        model = PowerModel()
        events = events_of("nop\nnop\nnop")
        trace = model.render_events(events)
        spc = DEFAULT_GEOMETRY.samples_per_cycle
        assert len(trace) == (len(events) + 2) * spc

    def test_window_extraction(self):
        model = PowerModel()
        events = events_of("nop\nadd r0, r1\nnop")
        trace = model.render_events(events)
        window = model.window(trace, 1)
        assert len(window) == 315


class TestDeterminismAndSensitivity:
    def test_deterministic(self):
        events = events_of("add r1, r2", r1=10, r2=20)
        a = PowerModel().render_events(events)
        b = PowerModel().render_events(events)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        events = events_of("add r1, r2")
        a = PowerModel(PowerModelConfig(seed=1)).render_events(events)
        b = PowerModel(PowerModelConfig(seed=2)).render_events(events)
        assert not np.allclose(a, b)

    def test_instruction_changes_trace(self):
        model = PowerModel()
        a = model.render_events(events_of("add r1, r2"))
        b = model.render_events(events_of("sub r1, r2"))
        assert not np.allclose(a, b)

    def test_register_changes_trace(self):
        model = PowerModel()
        a = model.render_events(events_of("add r1, r2"))
        b = model.render_events(events_of("add r3, r2"))
        assert not np.allclose(a, b)

    def test_data_changes_trace(self):
        model = PowerModel()
        a = model.render_events(events_of("add r1, r2", r1=0x00, r2=0x00))
        b = model.render_events(events_of("add r1, r2", r1=0xFF, r2=0xFF))
        assert not np.allclose(a, b)

    def test_alias_is_electrically_identical(self):
        """TST r5 and AND r5,r5 share silicon except the class residue."""
        model = PowerModel(PowerModelConfig(class_bias_scale=0.0,
                                            class_energy_scale=0.0))
        a = model.render_events(events_of("tst r5", r5=0x3C))
        b = model.render_events(events_of("and r5, r5", r5=0x3C))
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_same_encoding_is_same_trace(self):
        """``and r5, r5`` assembles to TST's bits and decodes back as TST,
        so the rendered traces are bit-identical — the alias ambiguity is
        a *label* question, never an electrical one."""
        model = PowerModel()
        a = model.render_events(events_of("tst r5", r5=0x3C))
        b = model.render_events(events_of("and r5, r5", r5=0x3C))
        np.testing.assert_array_equal(a, b)

    def test_class_residues_distinct_per_key(self):
        model = PowerModel()
        assert not np.allclose(model._class_bias("TST"), model._class_bias("AND"))
        assert not np.allclose(model._class_bias("SEC"), model._class_bias("BSET"))

    def test_memory_instruction_draws_more(self):
        model = PowerModel()
        nop = model.render_events(events_of("nop\nnop\nnop"))
        lds = model.render_events(events_of("nop\nlds r0, 0x0100\nnop"))
        spc = DEFAULT_GEOMETRY.samples_per_cycle
        exec_slice = slice(2 * spc, 3 * spc)
        assert lds[exec_slice].sum() > nop[exec_slice].sum() + 10

    def test_group_bias_constant_within_group(self):
        """Two G1 instructions share the same group signature term."""
        model = PowerModel()
        g1 = model._group_bias(1)
        g2 = model._group_bias(2)
        assert not np.allclose(g1, g2)
        np.testing.assert_array_equal(g1, model._group_bias(1))


class TestDeviceVariation:
    def test_gain_and_offset(self):
        events = events_of("add r1, r2")
        nominal = PowerModel().render_events(events)
        device = DeviceProfile(name="d", gain=1.1, offset=0.7)
        shifted = PowerModel(device=device).render_events(events)
        np.testing.assert_allclose(shifted, 1.1 * nominal + 0.7, rtol=1e-10)

    def test_component_mismatch_changes_trace(self):
        events = events_of("lds r0, 0x0100")
        nominal = PowerModel().render_events(events)
        device = DeviceProfile(
            name="d", component_mismatch={"mem_load": 1.3}
        )
        assert not np.allclose(
            PowerModel(device=device).render_events(events), nominal
        )

    def test_weight_jitter_changes_trace(self):
        events = events_of("add r1, r2")
        nominal = PowerModel().render_events(events)
        device = DeviceProfile(
            name="d", weight_jitter=0.2, weight_jitter_seed=99
        )
        assert not np.allclose(
            PowerModel(device=device).render_events(events), nominal
        )

    def test_sampled_devices_differ(self):
        rng = np.random.default_rng(0)
        d1 = DeviceProfile.sample("a", rng, component_names=("alu",))
        d2 = DeviceProfile.sample("b", rng, component_names=("alu",))
        assert d1.gain != d2.gain
        assert d1.weight_jitter_seed != d2.weight_jitter_seed
