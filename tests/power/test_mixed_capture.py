"""capture_mixed_program options and window-edge behaviour."""

import numpy as np
import pytest

from repro.power import Acquisition
from repro.power.acquisition import random_instance


class TestMixedProgramOptions:
    def test_fixed_by_class(self):
        acq = Acquisition(seed=91)
        ts = acq.capture_mixed_program(
            ["EOR", "LDI"],
            n_per_class=6,
            fixed_by_class={"EOR": {0: 16, 1: 17}, "LDI": {0: 20}},
        )
        assert len(ts) == 12
        assert set(ts.label_names) == {"EOR", "LDI"}

    def test_sampler_override(self):
        acq = Acquisition(seed=92)
        seen = []

        def eor_sampler(rng, address):
            seen.append(address)
            return random_instance("EOR", rng, word_address=address,
                                   fixed={0: 16, 1: 0})

        ts = acq.capture_mixed_program(
            ["EOR", "LDI"],
            n_per_class=5,
            target_sampler_by_class={"EOR": eor_sampler},
        )
        assert len(seen) == 5  # sampler used exactly once per EOR slot
        assert len(ts) == 10

    def test_reproducible_per_program_id(self):
        a = Acquisition(seed=93).capture_mixed_program(["ADD", "AND"], 8, 1)
        b = Acquisition(seed=93).capture_mixed_program(["ADD", "AND"], 8, 1)
        np.testing.assert_array_equal(a.traces, b.traces)
        c = Acquisition(seed=93).capture_mixed_program(["ADD", "AND"], 8, 2)
        assert not np.allclose(a.traces, c.traces)

    def test_interleaving_shuffled(self):
        ts = Acquisition(seed=94).capture_mixed_program(["ADD", "AND"], 20, 0)
        # labels must not be two contiguous blocks
        first_half = ts.labels[: len(ts) // 2]
        assert 0 in first_half and 1 in first_half


class TestWindowEdges:
    def test_first_window_clamped(self):
        """Trigger jitter cannot push a window before the trace start."""
        from repro.power import Oscilloscope

        acq = Acquisition(
            seed=95,
            scope=Oscilloscope(trigger_jitter_std=50.0),  # absurd jitter
        )
        windows, _ = acq.capture_class("NOP", 6, 2)
        assert windows.shape == (6, 315)
        assert np.all(np.isfinite(windows))
