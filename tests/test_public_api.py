"""Public API surface tests."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackages_importable(self):
        for sub in (
            "isa", "sim", "power", "dsp", "features", "ml", "core",
            "baselines", "experiments",
        ):
            module = importlib.import_module(f"repro.{sub}")
            assert hasattr(module, "__all__")

    def test_subpackage_alls_resolve(self):
        for sub in (
            "isa", "sim", "power", "dsp", "features", "ml", "core",
            "baselines", "experiments",
        ):
            module = importlib.import_module(f"repro.{sub}")
            for name in module.__all__:
                assert hasattr(module, name), f"repro.{sub}.{name}"

    def test_quickstart_snippet_shape(self):
        """The README/module-docstring quickstart runs end to end."""
        from repro import Acquisition, FeatureConfig, QDA, SideChannelDisassembler

        acq = Acquisition(seed=42)
        traces = acq.capture_instruction_set(["ADD", "EOR", "LDS"], 40, 2)
        dis = SideChannelDisassembler(
            FeatureConfig(kl_threshold="auto:0.9", n_components=8),
            classifier_factory=QDA,
        )
        model = dis.fit_instruction_level(1, traces)
        keys = model.predict_keys(traces.traces[:5])
        assert set(keys) <= {"ADD", "EOR", "LDS"}
