"""GaussianNB, kNN, one-vs-one ensemble tests."""

import numpy as np
import pytest

from repro.ml import GaussianNB, KNeighborsClassifier, LDA, OneVsOneClassifier, QDA


def blobs(rng, means, n=80, scale=1.0):
    X = np.concatenate([rng.normal(m, scale, (n, len(m))) for m in means])
    y = np.repeat(np.arange(len(means)), n)
    return X, y


class TestGaussianNB:
    def test_blobs(self):
        rng = np.random.default_rng(0)
        X, y = blobs(rng, [(0, 0), (5, 5)])
        assert GaussianNB().fit(X, y).score(X, y) > 0.98

    def test_axis_aligned_variances_learned(self):
        rng = np.random.default_rng(1)
        a = np.column_stack([rng.normal(0, 0.3, 500), rng.normal(0, 5, 500)])
        b = np.column_stack([rng.normal(2, 0.3, 500), rng.normal(0, 5, 500)])
        X = np.concatenate([a, b])
        y = np.repeat([0, 1], 500)
        clf = GaussianNB().fit(X, y)
        assert clf.score(X, y) > 0.98
        # the noisy dimension's variance dwarfs the informative one's
        assert clf.vars_[0, 1] > 20 * clf.vars_[0, 0]

    def test_proba_normalized(self):
        rng = np.random.default_rng(2)
        X, y = blobs(rng, [(0, 0), (3, 0), (0, 3)])
        proba = GaussianNB().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)


class TestKNN:
    def test_one_nn_memorizes(self):
        rng = np.random.default_rng(3)
        X, y = blobs(rng, [(0, 0), (1.5, 0)], n=40)
        assert KNeighborsClassifier(1).fit(X, y).score(X, y) == 1.0

    def test_k_larger_than_train_clamped(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0, 0, 1])
        clf = KNeighborsClassifier(99).fit(X, y)
        assert clf.predict(np.array([[0.5]]))[0] == 0  # majority of all 3

    def test_majority_vote(self):
        X = np.array([[0.0], [0.1], [0.2], [5.0]])
        y = np.array([0, 0, 0, 1])
        clf = KNeighborsClassifier(3).fit(X, y)
        assert clf.predict(np.array([[0.05]]))[0] == 0

    def test_blocked_prediction_matches(self):
        rng = np.random.default_rng(4)
        X, y = blobs(rng, [(0, 0), (4, 4)], n=100)
        a = KNeighborsClassifier(5, block_size=7).fit(X, y).predict(X)
        b = KNeighborsClassifier(5, block_size=512).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)


class TestOneVsOne:
    def test_matches_direct_multiclass_on_blobs(self):
        rng = np.random.default_rng(5)
        X, y = blobs(rng, [(0, 0), (5, 0), (0, 5), (5, 5)])
        ovo = OneVsOneClassifier(QDA()).fit(X, y)
        assert ovo.score(X, y) > 0.97
        assert len(ovo.estimators_) == 6

    def test_vote_matrix_rows_sum_to_pairs(self):
        rng = np.random.default_rng(6)
        X, y = blobs(rng, [(0, 0), (4, 0), (0, 4)])
        ovo = OneVsOneClassifier(LDA()).fit(X, y)
        votes = ovo.vote_matrix(X[:5])
        np.testing.assert_allclose(votes.sum(axis=1), 3)  # C(3,2) votes

    def test_non_contiguous_labels(self):
        rng = np.random.default_rng(7)
        X, y = blobs(rng, [(0, 0), (5, 5)])
        y = np.where(y == 0, 3, 11)
        ovo = OneVsOneClassifier(QDA()).fit(X, y)
        assert set(ovo.predict(X)) <= {3, 11}
