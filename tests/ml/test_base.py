"""Estimator base API tests."""

import numpy as np
import pytest

from repro.ml import LDA, QDA, SVC, GaussianNB, KNeighborsClassifier
from repro.ml.base import check_Xy


class TestCheckXy:
    def test_coerces_dtypes(self):
        X, y = check_Xy([[1, 2], [3, 4]], [0, 1])
        assert X.dtype == np.float64
        assert y.dtype == np.int64

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            check_Xy(np.zeros(5))

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            check_Xy(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            check_Xy(np.zeros((3, 2)), np.zeros((3, 1)))


class TestCloneAndParams:
    @pytest.mark.parametrize(
        "estimator",
        [
            LDA(shrinkage=0.05),
            QDA(regularization=0.02),
            GaussianNB(var_smoothing=1e-6),
            KNeighborsClassifier(n_neighbors=7),
            SVC(C=3.0, gamma=0.5, kernel="linear"),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_clone_preserves_hyperparameters(self, estimator):
        clone = estimator.clone()
        assert clone is not estimator
        assert clone.get_params() == estimator.get_params()

    def test_fitted_attributes_not_in_params(self):
        rng = np.random.default_rng(0)
        X = np.concatenate([rng.normal(-2, 1, (20, 2)), rng.normal(2, 1, (20, 2))])
        y = np.repeat([0, 1], 20)
        clf = LDA().fit(X, y)
        params = clf.get_params()
        assert "means_" not in params
        assert "priors_" not in params

    def test_score_is_accuracy(self):
        rng = np.random.default_rng(1)
        X = np.concatenate([rng.normal(-3, 0.5, (30, 2)), rng.normal(3, 0.5, (30, 2))])
        y = np.repeat([0, 1], 30)
        clf = LDA().fit(X, y)
        manual = float(np.mean(clf.predict(X) == y))
        assert clf.score(X, y) == pytest.approx(manual)
