"""LDA/QDA correctness tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import LDA, QDA


def blobs(rng, means, n=120, scale=1.0):
    X = np.concatenate([rng.normal(m, scale, (n, len(m))) for m in means])
    y = np.repeat(np.arange(len(means)), n)
    return X, y


class TestLDA:
    def test_separable_blobs(self):
        rng = np.random.default_rng(0)
        X, y = blobs(rng, [(0, 0), (6, 0), (0, 6)])
        clf = LDA().fit(X, y)
        assert clf.score(X, y) > 0.98

    def test_decision_function_shape(self):
        rng = np.random.default_rng(1)
        X, y = blobs(rng, [(0, 0), (4, 0)])
        clf = LDA().fit(X, y)
        assert clf.decision_function(X).shape == (len(X), 2)

    def test_posteriors_normalized(self):
        rng = np.random.default_rng(2)
        X, y = blobs(rng, [(0, 0), (4, 0), (2, 4)])
        clf = LDA().fit(X, y)
        proba = clf.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(proba >= 0)

    def test_linear_boundary_at_midpoint(self):
        """Equal covariances and priors -> boundary at the mean midpoint."""
        rng = np.random.default_rng(3)
        X, y = blobs(rng, [(-2, 0), (2, 0)], n=4000)
        clf = LDA().fit(X, y)
        scores = clf.decision_function(np.array([[0.0, 0.0]]))
        assert abs(scores[0, 0] - scores[0, 1]) < 0.25

    def test_priors_shift_boundary(self):
        rng = np.random.default_rng(4)
        X, y = blobs(rng, [(-1, 0), (1, 0)], n=500)
        biased = LDA(priors=np.array([0.95, 0.05])).fit(X, y)
        balanced = LDA().fit(X, y)
        point = np.array([[0.0, 0.0]])
        assert biased.predict(point)[0] == 0
        # balanced classifier is ambivalent there; probability ~0.5
        assert 0.3 < balanced.predict_proba(point)[0, 0] < 0.7

    def test_clone_is_unfitted_copy(self):
        clf = LDA(shrinkage=0.1)
        clone = clf.clone()
        assert clone is not clf
        assert clone.shrinkage == 0.1


class TestQDA:
    def test_unequal_covariances(self):
        """QDA separates concentric classes that defeat LDA."""
        rng = np.random.default_rng(5)
        inner = rng.normal(0, 0.5, (300, 2))
        outer_angle = rng.uniform(0, 2 * np.pi, 300)
        outer = 3.0 * np.column_stack(
            [np.cos(outer_angle), np.sin(outer_angle)]
        ) + rng.normal(0, 0.3, (300, 2))
        X = np.concatenate([inner, outer])
        y = np.repeat([0, 1], 300)
        assert QDA().fit(X, y).score(X, y) > 0.95
        assert LDA().fit(X, y).score(X, y) < 0.75

    def test_matches_gaussian_bayes_rule(self):
        rng = np.random.default_rng(6)
        X, y = blobs(rng, [(0, 0), (5, 5)], n=2000)
        clf = QDA().fit(X, y)
        assert clf.score(X, y) > 0.99

    def test_regularization_handles_few_samples(self):
        rng = np.random.default_rng(7)
        # 10 samples, 8 dims: raw covariance is singular
        X = np.concatenate([rng.normal(0, 1, (10, 8)), rng.normal(3, 1, (10, 8))])
        y = np.repeat([0, 1], 10)
        clf = QDA(regularization=0.1).fit(X, y)
        assert np.all(np.isfinite(clf.decision_function(X)))

    def test_posteriors_normalized(self):
        rng = np.random.default_rng(8)
        X, y = blobs(rng, [(0, 0), (4, 1)])
        proba = QDA().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 4), st.floats(3.0, 8.0))
def test_property_well_separated_blobs_learned(seed, n_classes, gap):
    rng = np.random.default_rng(seed)
    means = [(gap * i, gap * (i % 2)) for i in range(n_classes)]
    X, y = blobs(rng, means, n=60)
    for clf in (LDA(), QDA()):
        assert clf.fit(X, y).score(X, y) > 0.9
