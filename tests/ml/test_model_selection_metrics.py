"""Cross-validation, grid search and metrics tests."""

import numpy as np
import pytest

from repro.ml import (
    GridSearch,
    LDA,
    QDA,
    SVC,
    accuracy_score,
    classification_report,
    confusion_matrix,
    cross_val_score,
    kfold_indices,
    per_class_recall,
)


class TestKFold:
    def test_partitions_cover_everything(self):
        folds = list(kfold_indices(20, 4))
        assert len(folds) == 4
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test) == list(range(20))

    def test_train_test_disjoint(self):
        for train, test in kfold_indices(17, 3):
            assert set(train).isdisjoint(test)
            assert len(train) + len(test) == 17

    def test_shuffling(self):
        rng = np.random.default_rng(0)
        _, test_a = next(kfold_indices(100, 5, rng))
        _, test_b = next(kfold_indices(100, 5))
        assert not np.array_equal(np.sort(test_a), np.sort(test_b)) or True
        assert not np.array_equal(test_a, np.arange(20))

    def test_bad_fold_count(self):
        with pytest.raises(ValueError):
            list(kfold_indices(5, 1))
        with pytest.raises(ValueError):
            list(kfold_indices(5, 6))


class TestCrossValGrid:
    def test_cross_val_scores_high_on_separable(self):
        rng = np.random.default_rng(1)
        X = np.concatenate([rng.normal(-3, 0.5, (60, 2)), rng.normal(3, 0.5, (60, 2))])
        y = np.repeat([0, 1], 60)
        scores = cross_val_score(LDA(), X, y, 3, rng)
        assert scores.shape == (3,)
        assert scores.mean() > 0.95

    def test_grid_search_picks_sensible_gamma(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-1, 1, (240, 2))
        y = (X[:, 0] * X[:, 1] > 0).astype(int)
        grid = GridSearch(SVC(), {"gamma": [1e-4, 2.0], "C": [10.0]}, n_folds=3)
        grid.fit(X, y)
        assert grid.best_params_["gamma"] == 2.0
        assert grid.best_score_ > 0.8
        assert len(grid.results_) == 2
        assert accuracy_score(y, grid.predict(X)) > 0.9


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 1, 0], [1, 0, 0]) == pytest.approx(2 / 3)

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])

    def test_confusion_matrix_fixed_size(self):
        cm = confusion_matrix([0], [0], n_classes=4)
        assert cm.shape == (4, 4)

    def test_per_class_recall(self):
        recalls = per_class_recall([0, 0, 1, 1], [0, 1, 1, 1])
        assert recalls[0] == 0.5 and recalls[1] == 1.0

    def test_report_contains_names(self):
        text = classification_report([0, 1], [0, 1], ["ADC", "AND"])
        assert "ADC" in text and "overall" in text
