"""SVM/SMO correctness tests."""

import numpy as np
import pytest

from repro.ml import SVC, linear_kernel, rbf_kernel


class TestKernels:
    def test_rbf_diagonal_ones(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (10, 3))
        K = rbf_kernel(X, X, gamma=0.5)
        np.testing.assert_allclose(np.diag(K), 1.0, atol=1e-12)

    def test_rbf_symmetry_and_range(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, (12, 4))
        K = rbf_kernel(X, X, gamma=1.0)
        np.testing.assert_allclose(K, K.T, atol=1e-12)
        assert np.all(K > 0) and np.all(K <= 1 + 1e-12)

    def test_linear_kernel(self):
        A = np.array([[1.0, 2.0]])
        B = np.array([[3.0, 4.0]])
        assert linear_kernel(A, B)[0, 0] == 11.0


class TestBinary:
    def test_separable_margin(self):
        rng = np.random.default_rng(2)
        X = np.concatenate([rng.normal(-2, 0.5, (100, 2)), rng.normal(2, 0.5, (100, 2))])
        y = np.repeat([0, 1], 100)
        clf = SVC(C=10, kernel="linear").fit(X, y)
        assert clf.score(X, y) == 1.0

    def test_xor_needs_rbf(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-1, 1, (400, 2))
        y = (X[:, 0] * X[:, 1] > 0).astype(int)
        assert SVC(C=10, gamma=2.0).fit(X, y).score(X, y) > 0.97
        assert SVC(C=10, kernel="linear").fit(X, y).score(X, y) < 0.7

    def test_decision_sign_matches_prediction(self):
        rng = np.random.default_rng(4)
        X = np.concatenate([rng.normal(-1, 0.6, (60, 2)), rng.normal(1, 0.6, (60, 2))])
        y = np.repeat([0, 1], 60)
        clf = SVC(C=5).fit(X, y)
        decision = clf.decision_function(X)
        pred = clf.predict(X)
        # positive decision votes for classes_[0]
        assert np.all((decision > 0) == (pred == clf.classes_[0]))

    def test_support_vectors_subset(self):
        rng = np.random.default_rng(5)
        X = np.concatenate([rng.normal(-3, 0.4, (80, 2)), rng.normal(3, 0.4, (80, 2))])
        y = np.repeat([0, 1], 80)
        clf = SVC(C=1.0).fit(X, y)
        machine = clf._machines[(0, 1)]
        # widely separated blobs need few support vectors
        assert len(machine.support_vectors_) < 40

    def test_soft_margin_tolerates_label_noise(self):
        rng = np.random.default_rng(6)
        X = np.concatenate([rng.normal(-1.5, 1, (150, 2)), rng.normal(1.5, 1, (150, 2))])
        y = np.repeat([0, 1], 150)
        flip = rng.choice(300, 15, replace=False)
        y_noisy = y.copy()
        y_noisy[flip] ^= 1
        clf = SVC(C=1.0).fit(X, y_noisy)
        assert clf.score(X, y) > 0.9  # generalizes past the flipped labels


class TestMulticlass:
    def test_three_blobs(self):
        rng = np.random.default_rng(7)
        X = np.concatenate([
            rng.normal((0, 0), 0.7, (80, 2)),
            rng.normal((5, 0), 0.7, (80, 2)),
            rng.normal((0, 5), 0.7, (80, 2)),
        ])
        y = np.repeat([0, 1, 2], 80)
        clf = SVC(C=10).fit(X, y)
        assert clf.score(X, y) > 0.98
        assert len(clf._machines) == 3  # one-vs-one pairs

    def test_gamma_scale_resolution(self):
        rng = np.random.default_rng(8)
        X = rng.normal(0, 2.0, (50, 4))
        y = (X[:, 0] > 0).astype(int)
        clf = SVC(gamma="scale").fit(X, y)
        assert clf.gamma_ == pytest.approx(1.0 / (4 * X.var()), rel=1e-9)

    def test_gamma_auto(self):
        rng = np.random.default_rng(9)
        X = rng.normal(0, 1, (30, 5))
        y = (X[:, 0] > 0).astype(int)
        assert SVC(gamma="auto").fit(X, y).gamma_ == pytest.approx(0.2)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            SVC(kernel="poly")

    def test_labels_preserved(self):
        rng = np.random.default_rng(10)
        X = np.concatenate([rng.normal(-2, 0.3, (30, 2)), rng.normal(2, 0.3, (30, 2))])
        y = np.repeat([7, 42], 30)
        clf = SVC(C=5).fit(X, y)
        assert set(clf.predict(X)) <= {7, 42}
