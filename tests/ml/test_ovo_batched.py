"""Parity tests: shared-statistic OvO fitting vs the per-pair reference."""

import numpy as np
import pytest

from repro.ml import LDA, QDA, SVC, ClassStats, GaussianNB, OneVsOneClassifier


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    centers = rng.normal(0, 3, (5, 6))
    X = np.concatenate(
        [center + rng.normal(0, 1, (40, 6)) for center in centers]
    )
    y = np.repeat(np.arange(5), 40)
    shuffle = rng.permutation(len(y))
    return X[shuffle], y[shuffle]


BASES = [
    pytest.param(lambda: LDA(), id="lda"),
    pytest.param(lambda: QDA(), id="qda"),
    pytest.param(lambda: GaussianNB(), id="gnb"),
    pytest.param(lambda: SVC(C=1.0, gamma=0.2), id="svc"),
]


class TestSharedStatFitParity:
    @pytest.mark.parametrize("factory", BASES)
    def test_votes_and_predictions_match_reference(self, data, factory):
        X, y = data
        fast = OneVsOneClassifier(factory()).fit(X, y, batched=True)
        slow = OneVsOneClassifier(factory()).fit_reference(X, y)
        np.testing.assert_array_equal(fast.vote_matrix(X), slow.vote_matrix(X))
        np.testing.assert_array_equal(fast.predict(X), slow.predict(X))

    @pytest.mark.parametrize("factory", BASES)
    def test_vectorized_inference_matches_loop(self, data, factory):
        X, y = data
        model = OneVsOneClassifier(factory()).fit(X, y)
        np.testing.assert_array_equal(
            model.vote_matrix(X), model.vote_matrix_reference(X)
        )
        np.testing.assert_array_equal(
            model.predict(X), model.predict_reference(X)
        )

    def test_lda_pair_templates_bit_exact(self, data):
        X, y = data
        fast = OneVsOneClassifier(LDA()).fit(X, y, batched=True)
        slow = OneVsOneClassifier(LDA()).fit_reference(X, y)
        for pair, estimator in fast.estimators_.items():
            np.testing.assert_array_equal(
                estimator.decision_function(X),
                slow.estimators_[pair].decision_function(X),
            )

    def test_qda_pair_templates_bit_exact(self, data):
        X, y = data
        fast = OneVsOneClassifier(QDA()).fit(X, y, batched=True)
        slow = OneVsOneClassifier(QDA()).fit_reference(X, y)
        for pair, estimator in fast.estimators_.items():
            np.testing.assert_array_equal(
                estimator.decision_function(X),
                slow.estimators_[pair].decision_function(X),
            )

    def test_gnb_soft_scores_within_tolerance(self, data):
        """The recombined smoothing term is algebraic, not bit-exact."""
        X, y = data
        fast = OneVsOneClassifier(GaussianNB()).fit(X, y, batched=True)
        slow = OneVsOneClassifier(GaussianNB()).fit_reference(X, y)
        for pair, estimator in fast.estimators_.items():
            np.testing.assert_allclose(
                estimator.predict_proba(X),
                slow.estimators_[pair].predict_proba(X),
                rtol=0,
                atol=1e-9,
            )

    def test_env_flag_forces_reference(self, data, monkeypatch):
        X, y = data
        monkeypatch.setenv("REPRO_BATCHED_TRAIN", "0")
        forced = OneVsOneClassifier(QDA()).fit(X, y)
        slow = OneVsOneClassifier(QDA()).fit_reference(X, y)
        np.testing.assert_array_equal(forced.predict(X), slow.predict(X))

    def test_svc_parallel_pair_fit_matches_serial(self, data):
        X, y = data
        serial = OneVsOneClassifier(SVC(C=1.0, gamma=0.2), n_jobs=1).fit(X, y)
        pooled = OneVsOneClassifier(SVC(C=1.0, gamma=0.2), n_jobs=2).fit(X, y)
        np.testing.assert_array_equal(serial.predict(X), pooled.predict(X))
        np.testing.assert_array_equal(
            serial.vote_matrix(X), pooled.vote_matrix(X)
        )


class TestClassStats:
    def test_pooled_variance_matches_direct(self, data):
        X, y = data
        stats = ClassStats.from_Xy(X, y)
        mask = (y == 1) | (y == 3)
        indices = [1, 3]
        np.testing.assert_allclose(
            stats.pooled_variance(indices),
            X[mask].var(axis=0),
            rtol=1e-12,
        )

    def test_subset_priors_sum_to_one(self, data):
        X, y = data
        stats = ClassStats.from_Xy(X, y)
        priors = stats.subset_priors([0, 2])
        assert priors.sum() == pytest.approx(1.0)

    def test_moments_match_reference_expressions(self, data):
        X, y = data
        stats = ClassStats.from_Xy(X, y)
        block = X[y == 2]
        np.testing.assert_array_equal(stats.means[2], block.mean(axis=0))
        np.testing.assert_array_equal(stats.vars[2], block.var(axis=0))
        centered = block - block.mean(axis=0)
        np.testing.assert_array_equal(stats.scatters[2], centered.T @ centered)
