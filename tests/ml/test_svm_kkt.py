"""SMO optimality: the fitted dual variables must satisfy the KKT
conditions of the C-SVM problem (within the solver tolerance)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.svm import SVC, rbf_kernel, linear_kernel


def kkt_violation(machine, X, y_pm):
    """Maximal violating pair gap m(alpha) - M(alpha) at the solution."""
    kernel = rbf_kernel if machine.kernel == "rbf" else linear_kernel
    K = kernel(X, X, machine.gamma)
    alpha = np.zeros(len(X))
    alpha[machine.support_mask_] = np.abs(machine.dual_coef_)
    Q = (y_pm[:, None] * y_pm[None, :]) * K
    G = Q @ alpha - 1.0
    yG = -y_pm * G
    C = machine.C
    up = ((alpha < C - 1e-9) & (y_pm > 0)) | ((alpha > 1e-9) & (y_pm < 0))
    low = ((alpha < C - 1e-9) & (y_pm < 0)) | ((alpha > 1e-9) & (y_pm > 0))
    if not up.any() or not low.any():
        return 0.0
    return float(yG[up].max() - yG[low].min())


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from([0.5, 2.0, 10.0]))
def test_property_smo_satisfies_kkt(seed, C):
    rng = np.random.default_rng(seed)
    X = np.concatenate(
        [rng.normal(-1.0, 1.0, (40, 3)), rng.normal(1.0, 1.0, (40, 3))]
    )
    y = np.repeat([0, 1], 40)
    clf = SVC(C=C, tol=1e-3).fit(X, y)
    machine = clf._machines[(0, 1)]
    y_pm = np.where(y == 0, 1.0, -1.0)
    assert kkt_violation(machine, X, y_pm) <= clf.tol + 1e-6


def test_dual_constraint_sum_zero():
    """sum alpha_i y_i = 0 at the solution (the equality constraint)."""
    rng = np.random.default_rng(3)
    X = np.concatenate(
        [rng.normal(-1.5, 1.0, (60, 2)), rng.normal(1.5, 1.0, (60, 2))]
    )
    y = np.repeat([0, 1], 60)
    clf = SVC(C=5.0).fit(X, y)
    machine = clf._machines[(0, 1)]
    assert abs(machine.dual_coef_.sum()) < 1e-6


def test_box_constraints_respected():
    rng = np.random.default_rng(4)
    X = rng.normal(0, 1, (80, 2))
    y = (X[:, 0] + 0.3 * rng.normal(0, 1, 80) > 0).astype(int)
    C = 2.0
    clf = SVC(C=C).fit(X, y)
    machine = clf._machines[(0, 1)]
    alphas = np.abs(machine.dual_coef_)
    assert np.all(alphas >= -1e-9)
    assert np.all(alphas <= C + 1e-9)


def test_margin_support_vectors_on_margin():
    """Free SVs (0 < alpha < C) sit on the +/-1 margin."""
    rng = np.random.default_rng(5)
    X = np.concatenate(
        [rng.normal(-2.0, 0.8, (80, 2)), rng.normal(2.0, 0.8, (80, 2))]
    )
    y = np.repeat([0, 1], 80)
    clf = SVC(C=1.0, kernel="linear").fit(X, y)
    machine = clf._machines[(0, 1)]
    y_pm = np.where(y == 0, 1.0, -1.0)
    decision = machine.decision_function(X)
    alphas = np.zeros(len(X))
    alphas[machine.support_mask_] = np.abs(machine.dual_coef_)
    free = (alphas > 1e-6) & (alphas < machine.C - 1e-6)
    if free.any():
        margins = y_pm[free] * decision[free]
        np.testing.assert_allclose(margins, 1.0, atol=0.05)
