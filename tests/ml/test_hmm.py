"""Gaussian HMM and Viterbi tests."""

import numpy as np
import pytest

from repro.ml import GaussianHMM, transition_matrix_from_sequences


class TestTransitions:
    def test_estimation_with_smoothing(self):
        T = transition_matrix_from_sequences([[0, 1, 0, 1, 0]], 2, smoothing=0.0001)
        assert T[0, 1] > 0.99
        assert T[1, 0] > 0.99
        np.testing.assert_allclose(T.sum(axis=1), 1.0)

    def test_smoothing_avoids_zeros(self):
        T = transition_matrix_from_sequences([[0, 0]], 3, smoothing=1.0)
        assert np.all(T > 0)


class TestViterbi:
    def _make_hmm(self, rng, means=((0.0,), (5.0,))):
        X = np.concatenate([rng.normal(m, 0.5, (100, 1)) for m in means])
        states = np.repeat(np.arange(len(means)), 100)
        hmm = GaussianHMM(n_states=len(means))
        hmm.fit_emissions(X, states)
        return hmm

    def test_decodes_obvious_sequence(self):
        rng = np.random.default_rng(0)
        hmm = self._make_hmm(rng)
        hmm.set_transitions(np.array([[0.5, 0.5], [0.5, 0.5]]))
        observations = np.array([[0.1], [4.9], [5.2], [-0.2]])
        np.testing.assert_array_equal(hmm.viterbi(observations), [0, 1, 1, 0])

    def test_transition_prior_overrides_weak_emissions(self):
        rng = np.random.default_rng(1)
        hmm = self._make_hmm(rng, means=((0.0,), (1.0,)))
        # Strongly persistent dynamics
        hmm.set_transitions(np.array([[0.999, 0.001], [0.001, 0.999]]))
        # Ambiguous middle observation between two state-0 anchors
        observations = np.array([[0.0], [0.55], [0.0]])
        states = hmm.viterbi(observations)
        assert states[1] == 0  # prior keeps it in state 0

    def test_decode_posteriors_path(self):
        hmm = GaussianHMM(n_states=2)
        hmm.set_transitions(np.array([[0.9, 0.1], [0.1, 0.9]]))
        log_post = np.log(np.array([[0.9, 0.1], [0.6, 0.4], [0.02, 0.98]]))
        states = hmm.decode_posteriors(log_post)
        assert states[0] == 0 and states[-1] == 1

    def test_unset_transitions_raise(self):
        rng = np.random.default_rng(2)
        hmm = self._make_hmm(rng)
        with pytest.raises(RuntimeError):
            hmm.viterbi(np.zeros((3, 1)))

    def test_bad_transition_matrix_rejected(self):
        hmm = GaussianHMM(n_states=2)
        with pytest.raises(ValueError):
            hmm.set_transitions(np.array([[0.5, 0.2], [0.5, 0.5]]))
        with pytest.raises(ValueError):
            hmm.set_transitions(np.eye(3))

    def test_empty_state_rejected(self):
        hmm = GaussianHMM(n_states=3)
        with pytest.raises(ValueError):
            hmm.fit_emissions(np.zeros((4, 2)), np.array([0, 0, 1, 1]))
