"""Edge-case coverage for the env knob parsers (repro.util.env)."""

import warnings

import pytest

from repro.util.env import (
    env_flag,
    env_float,
    env_int,
    env_str,
    reset_env_warnings,
)


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    reset_env_warnings()
    yield
    reset_env_warnings()


class TestEnvFlag:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG", True) is True
        assert env_flag("REPRO_TEST_FLAG", False) is False

    @pytest.mark.parametrize("raw", ["0", "false", "off", "False", "OFF", "fAlSe"])
    def test_falsy_spellings_case_insensitive(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_FLAG", raw)
        assert env_flag("REPRO_TEST_FLAG", True) is False

    @pytest.mark.parametrize("raw", ["1", "true", "on", "yes", "anything"])
    def test_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_FLAG", raw)
        assert env_flag("REPRO_TEST_FLAG", False) is True

    def test_whitespace_is_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "  off  ")
        assert env_flag("REPRO_TEST_FLAG", True) is False

    def test_empty_and_blank_mean_unset(self, monkeypatch):
        for raw in ("", "   "):
            monkeypatch.setenv("REPRO_TEST_FLAG", raw)
            assert env_flag("REPRO_TEST_FLAG", True) is True
            assert env_flag("REPRO_TEST_FLAG", False) is False


class TestEnvInt:
    def test_unset_and_blank_return_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INT", raising=False)
        assert env_int("REPRO_TEST_INT", 7) == 7
        monkeypatch.setenv("REPRO_TEST_INT", "   ")
        assert env_int("REPRO_TEST_INT", 7) == 7

    def test_parses_with_whitespace(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "  42  ")
        assert env_int("REPRO_TEST_INT", 7) == 42

    def test_negative_values_pass_without_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "-3")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_INT", 7) == -3

    def test_unparsable_warns_once_naming_knob_and_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "junk")
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_INT.*junk.*7"):
            assert env_int("REPRO_TEST_INT", 7) == 7
        # One-shot: the second read stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_INT", 7) == 7
        # ...until the warning state is reset.
        reset_env_warnings()
        with pytest.warns(RuntimeWarning):
            env_int("REPRO_TEST_INT", 7)

    def test_float_text_is_not_an_int(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "3.5")
        with pytest.warns(RuntimeWarning):
            assert env_int("REPRO_TEST_INT", 7) == 7

    def test_minimum_clamps_and_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "-5")
        with pytest.warns(RuntimeWarning, match="clamping REPRO_TEST_INT"):
            assert env_int("REPRO_TEST_INT", 7, minimum=1) == 1

    def test_minimum_does_not_clamp_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INT", raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_INT", 0, minimum=1) == 0

    def test_value_at_minimum_is_silent(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_INT", 7, minimum=1) == 1


class TestEnvFloat:
    def test_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLOAT", " 2.5 ")
        assert env_float("REPRO_TEST_FLOAT", 1.0) == 2.5

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLOAT", raising=False)
        assert env_float("REPRO_TEST_FLOAT", 1.5) == 1.5

    def test_unparsable_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLOAT", "much")
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_FLOAT"):
            assert env_float("REPRO_TEST_FLOAT", 1.5) == 1.5

    def test_minimum_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLOAT", "0.25")
        with pytest.warns(RuntimeWarning, match="clamping"):
            assert env_float("REPRO_TEST_FLOAT", 256.0, minimum=1.0) == 1.0


class TestEnvStr:
    def test_lowercases_and_strips(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_STR", "  SciPy ")
        assert env_str("REPRO_TEST_STR", "auto") == "scipy"

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_STR", raising=False)
        assert env_str("REPRO_TEST_STR", "auto", choices=("auto",)) == "auto"

    def test_unknown_choice_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_STR", "cuda")
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_STR.*cuda"):
            assert (
                env_str("REPRO_TEST_STR", "auto", choices=("auto", "scipy"))
                == "auto"
            )

    def test_choice_accepted_case_insensitively(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_STR", "NUMPY")
        assert (
            env_str("REPRO_TEST_STR", "auto", choices=("auto", "numpy"))
            == "numpy"
        )
