"""Shared backoff policy: deterministic schedules, jitter, sleep hook."""

import pytest

from repro.util.retry import BackoffPolicy, uniform01


class TestUniform01:
    def test_range_and_determinism(self):
        values = [uniform01(7, f"key-{i}") for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [uniform01(7, f"key-{i}") for i in range(200)]

    def test_seed_and_key_both_matter(self):
        assert uniform01(1, "a") != uniform01(2, "a")
        assert uniform01(1, "a") != uniform01(1, "b")

    def test_spreads_over_the_interval(self):
        values = [uniform01(0, f"k{i}") for i in range(500)]
        assert min(values) < 0.2
        assert max(values) > 0.8


class TestBackoffPolicy:
    def test_disabled_base_never_waits(self):
        policy = BackoffPolicy(backoff_base=0.0)
        assert policy.delay(1) == 0.0
        assert policy.delay(5) == 0.0

    def test_attempt_zero_never_waits(self):
        policy = BackoffPolicy(backoff_base=1.0)
        assert policy.delay(0) == 0.0
        assert policy.delay(-3) == 0.0

    def test_exponential_growth_and_cap(self):
        policy = BackoffPolicy(
            backoff_base=1.0, backoff_factor=2.0, max_backoff=5.0
        )
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 2.0
        assert policy.delay(3) == 4.0
        assert policy.delay(4) == 5.0  # capped
        assert policy.delay(10) == 5.0

    def test_jitter_is_bounded_and_deterministic(self):
        policy = BackoffPolicy(backoff_base=1.0, jitter=0.25, seed=42)
        delays = [policy.delay(1, key=f"shard-{i}") for i in range(50)]
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert len(set(delays)) > 1  # keys actually decorrelate
        replay = BackoffPolicy(backoff_base=1.0, jitter=0.25, seed=42)
        assert delays == [replay.delay(1, key=f"shard-{i}") for i in range(50)]

    def test_jitter_seed_changes_schedule(self):
        a = BackoffPolicy(backoff_base=1.0, jitter=0.25, seed=1)
        b = BackoffPolicy(backoff_base=1.0, jitter=0.25, seed=2)
        assert [a.delay(1, key=f"k{i}") for i in range(10)] != [
            b.delay(1, key=f"k{i}") for i in range(10)
        ]

    def test_wait_routes_through_injected_sleep(self):
        slept = []
        policy = BackoffPolicy(backoff_base=0.5, sleep=slept.append)
        waited = policy.wait(2)
        assert waited == 1.0
        assert slept == [1.0]

    def test_wait_without_sleep_hook_only_computes(self):
        policy = BackoffPolicy(backoff_base=0.5)
        assert policy.wait(1) == 0.5  # returns the delay, waits nowhere

    def test_wait_zero_delay_skips_sleep(self):
        slept = []
        policy = BackoffPolicy(backoff_base=0.0, sleep=slept.append)
        assert policy.wait(3) == 0.0
        assert slept == []

    def test_frozen(self):
        policy = BackoffPolicy()
        with pytest.raises(Exception):
            policy.max_attempts = 9  # type: ignore[misc]


class TestQualityMigration:
    """quality.RetryPolicy is now a thin subclass of BackoffPolicy."""

    def test_retry_policy_is_backoff_policy(self):
        from repro.power.quality import RetryPolicy

        policy = RetryPolicy(backoff_base=0.5, backoff_factor=3.0)
        assert isinstance(policy, BackoffPolicy)
        assert policy.delay(2) == 1.5

    def test_from_env_reads_knobs(self, monkeypatch):
        from repro.power.quality import RetryPolicy

        monkeypatch.setenv("REPRO_FAULT_RETRIES", "5")
        monkeypatch.setenv("REPRO_FAULT_BACKOFF", "0.25")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 5
        assert policy.backoff_base == 0.25
