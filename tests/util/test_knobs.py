"""Knob-registry coverage: declarations, typed getters, clamps, docs table."""

import warnings
from pathlib import Path

import pytest

from repro.util.env import reset_env_warnings
from repro.util.knobs import (
    KNOBS,
    Knob,
    get_flag,
    get_float,
    get_int,
    get_str,
    knob_table_markdown,
)

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    reset_env_warnings()
    yield
    reset_env_warnings()


class TestDeclarations:
    def test_all_names_are_repro_prefixed(self):
        assert all(name.startswith("REPRO_") for name in KNOBS)

    def test_kinds_are_known(self):
        assert set(k.kind for k in KNOBS.values()) <= {
            "flag",
            "int",
            "float",
            "choice",
            "path",
        }

    def test_choice_knobs_default_to_a_choice_or_auto(self):
        for knob in KNOBS.values():
            if knob.kind == "choice":
                assert knob.default in knob.choices

    def test_every_knob_has_a_doc(self):
        assert all(k.doc for k in KNOBS.values())

    def test_pr12_knob_surface_is_declared(self):
        expected = {
            "REPRO_FFT_BACKEND",
            "REPRO_FFT_WORKERS",
            "REPRO_CWT_MEM_MB",
            "REPRO_N_JOBS",
            "REPRO_PARALLEL_MIN_FILES",
            "REPRO_BATCHED_RENDER",
            "REPRO_BATCHED_TRAIN",
            "REPRO_KL_BLOCK_PAIRS",
            "REPRO_FIT_CACHE_MB",
        }
        assert expected <= set(KNOBS)


class TestGetters:
    def test_get_int_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KL_BLOCK_PAIRS", "64")
        assert get_int("REPRO_KL_BLOCK_PAIRS") == 64

    def test_get_int_clamps_to_declared_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_KL_BLOCK_PAIRS", "-5")
        with pytest.warns(RuntimeWarning, match="clamping REPRO_KL_BLOCK_PAIRS"):
            assert get_int("REPRO_KL_BLOCK_PAIRS") == 1

    def test_fit_cache_minimum_allows_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIT_CACHE_MB", "0")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_int("REPRO_FIT_CACHE_MB") == 0
        monkeypatch.setenv("REPRO_FIT_CACHE_MB", "-10")
        with pytest.warns(RuntimeWarning):
            assert get_int("REPRO_FIT_CACHE_MB") == 0

    def test_n_jobs_keeps_all_cores_convention(self, monkeypatch):
        # <= 0 means "all cores" downstream, so the registry must NOT
        # clamp REPRO_N_JOBS.
        monkeypatch.setenv("REPRO_N_JOBS", "-1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_int("REPRO_N_JOBS") == -1

    def test_cwt_mem_clamps_to_one_mib(self, monkeypatch):
        monkeypatch.setenv("REPRO_CWT_MEM_MB", "0.01")
        with pytest.warns(RuntimeWarning, match="clamping REPRO_CWT_MEM_MB"):
            assert get_float("REPRO_CWT_MEM_MB") == 1.0

    def test_get_flag_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCHED_TRAIN", raising=False)
        assert get_flag("REPRO_BATCHED_TRAIN") is True
        monkeypatch.setenv("REPRO_BATCHED_TRAIN", "0")
        assert get_flag("REPRO_BATCHED_TRAIN") is False

    def test_get_str_rejects_unknown_choice(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_BACKEND", "cuda")
        with pytest.warns(RuntimeWarning, match="REPRO_FFT_BACKEND"):
            assert get_str("REPRO_FFT_BACKEND") == "auto"

    def test_unknown_knob_raises(self):
        with pytest.raises(KeyError, match="REPRO_TEST_NOPE"):
            get_int("REPRO_TEST_NOPE")

    def test_wrong_kind_getter_raises(self):
        with pytest.raises(TypeError, match="flag"):
            get_int("REPRO_BATCHED_TRAIN")
        with pytest.raises(TypeError, match="int"):
            get_flag("REPRO_FFT_WORKERS")


class TestKnobTable:
    def test_table_lists_exactly_the_in_table_knobs(self):
        table = knob_table_markdown()
        for knob in KNOBS.values():
            assert (f"`{knob.name}`" in table) == knob.in_table

    def test_readme_table_is_in_sync(self):
        from repro.analysis.docs import check_knob_table

        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert check_knob_table(readme) is None

    def test_declaration_validation(self):
        from repro.util.knobs import _declare

        with pytest.raises(ValueError, match="REPRO_-prefixed"):
            _declare(Knob(name="OTHER_X", kind="int", default=1, doc="d"))
        with pytest.raises(ValueError, match="duplicate"):
            knob = Knob(name="REPRO_TEST_X", kind="int", default=1, doc="d")
            _declare(knob, knob)
        with pytest.raises(ValueError, match="unknown kind"):
            _declare(Knob(name="REPRO_TEST_X", kind="list", default=1, doc="d"))
        with pytest.raises(ValueError, match="needs choices"):
            _declare(Knob(name="REPRO_TEST_X", kind="choice", default="a", doc="d"))
