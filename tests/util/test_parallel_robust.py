"""parallel_map under worker failure: crash, hang, error propagation.

The contract under test: results are bit-identical to the serial map for
any worker count *and any failure pattern*, workers are never leaked,
and a deterministic error still surfaces (from the serial salvage pass).
"""

import os
import time

import numpy as np
import pytest

from repro.util.parallel import (
    parallel_map,
    resolve_task_retries,
    resolve_task_timeout,
)


def _double(x):
    return 2 * x


def _crash_once(arg):
    """Kill the worker process hard the first time item 3 is attempted."""
    index, marker_dir = arg
    if index == 3:
        marker = os.path.join(marker_dir, "crashed")
        if not os.path.exists(marker):
            open(marker, "w").close()
            os._exit(1)
    return index * 2


def _hang_once(arg):
    """Stall the pool the first time item 2 is attempted."""
    index, marker_dir = arg
    if index == 2:
        marker = os.path.join(marker_dir, "hung")
        if not os.path.exists(marker):
            open(marker, "w").close()
            time.sleep(60.0)
    return index * 2


def _fail_on_three(x):
    if x == 3:
        raise ValueError("item three is broken")
    return 2 * x


class TestResolvers:
    def test_timeout_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert resolve_task_timeout(None) is None  # default: unbounded
        assert resolve_task_timeout(0) is None
        assert resolve_task_timeout(2.5) == 2.5
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "7")
        assert resolve_task_timeout(None) == 7.0

    def test_retries_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
        assert resolve_task_retries(None) >= 0
        assert resolve_task_retries(3) == 3
        assert resolve_task_retries(-2) == 0
        monkeypatch.setenv("REPRO_TASK_RETRIES", "4")
        assert resolve_task_retries(None) == 4


class TestWorkerCrash:
    def test_killed_worker_items_are_salvaged(self, tmp_path):
        # os._exit(1) breaks the whole pool; the retry round (the marker
        # file makes the crash transient) must recover every item and
        # the result must match the serial map exactly.
        items = [(i, str(tmp_path)) for i in range(8)]
        result = parallel_map(
            _crash_once, items, n_jobs=2, timeout=0, retries=2
        )
        assert result == [2 * i for i in range(8)]
        assert (tmp_path / "crashed").exists()  # the crash really happened

    def test_persistent_crash_falls_back_to_serial(self, tmp_path):
        # With zero retries the broken pool's items go straight to the
        # serial salvage pass, where the (now-marked) item succeeds.
        items = [(i, str(tmp_path)) for i in range(8)]
        result = parallel_map(
            _crash_once, items, n_jobs=2, timeout=0, retries=0
        )
        assert result == [2 * i for i in range(8)]

    def test_deterministic_error_propagates(self):
        # A genuine error in fn must raise, not vanish into a retry loop.
        with pytest.raises(ValueError, match="item three"):
            parallel_map(
                _fail_on_three, range(8), n_jobs=2, timeout=0, retries=1
            )


class TestWorkerHang:
    def test_stalled_pool_is_torn_down_and_items_retried(self, tmp_path):
        items = [(i, str(tmp_path)) for i in range(8)]
        started = time.monotonic()
        result = parallel_map(
            _hang_once, items, n_jobs=2, timeout=2.0, retries=1
        )
        elapsed = time.monotonic() - started
        assert result == [2 * i for i in range(8)]
        assert (tmp_path / "hung").exists()
        # Far below the 60 s sleep: the hung worker was terminated, not
        # joined, and the retry round ran the fast path.
        assert elapsed < 30.0


class TestDeterminism:
    def test_failure_path_matches_serial(self, tmp_path):
        items = [(i, str(tmp_path)) for i in range(8)]
        crashed = parallel_map(
            _crash_once, items, n_jobs=2, timeout=0, retries=1
        )
        serial = [_crash_once(item) for item in items]  # marker now set
        assert crashed == serial

    def test_numpy_payloads_bit_identical(self):
        def reference(i):
            return np.random.default_rng(i).normal(size=16)

        pooled = parallel_map(_rng_payload, range(12), n_jobs=3)
        for i, row in enumerate(pooled):
            np.testing.assert_array_equal(row, reference(i))


def _rng_payload(i):
    return np.random.default_rng(i).normal(size=16)


class TestFailureContext:
    """Per-item salvage context surfaced via last_map_failures() + obs."""

    def test_serial_map_reports_no_failures(self):
        from repro.util.parallel import last_map_failures

        assert parallel_map(_double, [1, 2, 3], n_jobs=1) == [2, 4, 6]
        assert last_map_failures() == []

    def test_clean_pooled_map_reports_no_failures(self):
        from repro.util.parallel import last_map_failures

        parallel_map(_double, list(range(6)), n_jobs=2)
        assert last_map_failures() == []

    def test_crash_records_item_attempts_and_error(self, tmp_path):
        from repro.util.parallel import last_map_failures

        items = [(i, str(tmp_path)) for i in range(8)]
        parallel_map(_crash_once, items, n_jobs=2, timeout=0, retries=1)
        failures = last_map_failures()
        assert failures, "worker death must surface failure context"
        assert any(f.index == 3 for f in failures)
        for record in failures:
            assert record.attempts >= 1
            assert record.error  # last failure cause, as text

    def test_context_resets_on_next_map(self, tmp_path):
        from repro.util.parallel import last_map_failures

        items = [(i, str(tmp_path)) for i in range(6)]
        parallel_map(_crash_once, items, n_jobs=2, timeout=0, retries=1)
        assert last_map_failures()
        parallel_map(_double, [1, 2], n_jobs=1)
        assert last_map_failures() == []

    def test_failures_feed_obs_span_and_counter(self, tmp_path):
        from repro import obs

        items = [(i, str(tmp_path)) for i in range(6)]
        collector = obs.activate()
        try:
            parallel_map(_crash_once, items, n_jobs=2, timeout=0, retries=1)
        finally:
            obs.deactivate()
        snapshot = collector.metrics.snapshot()
        assert snapshot.get("parallel.item_retries", {}).get("value", 0) >= 1
        spans = [s for s in collector.spans if s.name == "parallel.map"]
        assert spans
        attrs = spans[-1].attrs
        assert attrs.get("n_item_failures", 0) >= 1
        assert any("#3" in line for line in attrs.get("item_failures", []))
