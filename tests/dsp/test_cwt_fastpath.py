"""Equivalence and caching tests for the vectorized CWT fast path.

The fast path routes scales through three kernels (full-grid inverse FFT,
short-grid inverse FFT, narrowband GEMM); every test here pins it against
``CWT.transform_reference`` — the seed's per-scale full-grid loop — at the
acceptance tolerance (atol 1e-5).
"""

import numpy as np
import pickle
import pytest

from repro.dsp import backend
from repro.dsp.cwt import CWT, CwtConfig, clear_cwt_cache, cwt_magnitude, get_cwt

ATOL = 1e-5


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cwt_cache()
    yield
    clear_cwt_cache()


def _traces(n, length, seed=0):
    return np.random.default_rng(seed).normal(size=(n, length))


@pytest.mark.parametrize("magnitude", [True, False])
def test_batch_matches_reference(magnitude):
    config = CwtConfig(magnitude=magnitude)
    operator = CWT(315, config)
    traces = _traces(24, 315)
    fast = operator.transform(traces)
    reference = operator.transform_reference(traces)
    assert fast.shape == reference.shape == (24, 50, 315)
    np.testing.assert_allclose(fast, reference, atol=ATOL, rtol=0)


@pytest.mark.parametrize("magnitude", [True, False])
def test_single_trace_matches_reference(magnitude):
    operator = CWT(315, CwtConfig(magnitude=magnitude))
    trace = _traces(1, 315)[0]
    fast = operator.transform(trace)
    assert fast.shape == (50, 315)
    np.testing.assert_allclose(
        fast, operator.transform_reference(trace), atol=ATOL, rtol=0
    )


@pytest.mark.parametrize(
    "n_samples,config",
    [
        (128, CwtConfig(n_scales=8, scale_max=32.0)),
        (64, CwtConfig(n_scales=5, scale_max=16.0)),
        (100, CwtConfig()),
        (315, CwtConfig(n_scales=13, scale_min=2.0, scale_max=64.0)),
    ],
)
def test_nondefault_geometries_match_reference(n_samples, config):
    operator = CWT(n_samples, config)
    traces = _traces(9, n_samples, seed=3)
    np.testing.assert_allclose(
        operator.transform(traces),
        operator.transform_reference(traces),
        atol=ATOL,
        rtol=0,
    )


def test_chunking_does_not_change_results():
    operator = CWT(315)
    traces = _traces(33, 315, seed=5)
    full = operator.transform(traces, max_mem_mb=4096)
    tiny = operator.transform(traces, max_mem_mb=1)
    np.testing.assert_array_equal(full, tiny)


def test_double_precision_matches_reference():
    operator = CWT(315, CwtConfig(precision="double"))
    traces = _traces(8, 315, seed=7)
    np.testing.assert_allclose(
        operator.transform(traces),
        operator.transform_reference(traces),
        atol=1e-6,
        rtol=0,
    )


def test_numpy_backend_matches_scipy():
    operator = CWT(315)
    traces = _traces(6, 315, seed=11)
    default = operator.transform(traces)
    backend.set_backend("numpy")
    try:
        fallback = operator.transform(traces)
    finally:
        backend.set_backend(None)
    np.testing.assert_allclose(fallback, default, atol=1e-6, rtol=0)


def test_transform_points_matches_full_plane():
    operator = CWT(315)
    traces = _traces(12, 315, seed=13)
    # Cover every kernel: small-scale (full FFT), mid (short FFT), large
    # (GEMM), plus a repeated scale.
    points = [(0, 10), (2, 300), (10, 57), (30, 200), (49, 0), (30, 311)]
    values = operator.transform_points(traces, points)
    full = operator.transform(traces)
    for column, (j, k) in enumerate(points):
        np.testing.assert_allclose(
            values[:, column], full[:, j, k], rtol=1e-5, atol=1e-6
        )


class TestPointOperator:
    """``point_operator``: selected points as one complex linear map."""

    POINTS = [(0, 10), (2, 300), (10, 57), (30, 200), (49, 0), (30, 311)]

    def test_matches_staged_points_double(self):
        operator = CWT(315, CwtConfig(precision="double"))
        traces = _traces(12, 315, seed=13)
        matrix = operator.point_operator(self.POINTS)
        assert matrix.shape == (315, len(self.POINTS))
        assert matrix.dtype == np.complex128
        folded = np.abs(traces @ matrix)
        staged = operator.transform_points(traces, self.POINTS)
        np.testing.assert_allclose(folded, staged, rtol=1e-10, atol=1e-12)

    def test_matches_staged_points_single(self):
        operator = CWT(315)
        traces = _traces(12, 315, seed=17).astype(np.float32)
        folded = np.abs(traces @ operator.point_operator(self.POINTS))
        staged = operator.transform_points(traces, self.POINTS)
        np.testing.assert_allclose(folded, staged, rtol=1e-4, atol=1e-5)

    def test_real_part_matches_raw_coefficients(self):
        operator = CWT(315, CwtConfig(magnitude=False, precision="double"))
        traces = _traces(8, 315, seed=19)
        folded = (traces @ operator.point_operator(self.POINTS)).real
        staged = operator.transform_points(traces, self.POINTS)
        np.testing.assert_allclose(folded, staged, rtol=1e-10, atol=1e-12)


def test_operator_cache_identity():
    assert get_cwt(315) is get_cwt(315)
    assert get_cwt(315) is not get_cwt(128)
    assert get_cwt(315, CwtConfig(magnitude=False)) is not get_cwt(315)
    clear_cwt_cache()
    # Fresh operator after an explicit clear.
    assert isinstance(get_cwt(315), CWT)


def test_cwt_magnitude_uses_cached_operator():
    traces = _traces(4, 315, seed=17)
    first = cwt_magnitude(traces)
    # Same cached operator serves the convenience function.
    np.testing.assert_array_equal(first, get_cwt(315).transform(traces))


def test_config_scales_computed_once():
    config = CwtConfig()
    ladder = config.scales
    assert config.scales is ladder  # cached, not recomputed per access
    assert not ladder.flags.writeable
    np.testing.assert_allclose(ladder, np.geomspace(3.0, 256.0, 50))


def test_pickle_reattaches_to_cache():
    operator = get_cwt(315)
    assert pickle.loads(pickle.dumps(operator)) is operator
    # Pickling stores a cache key, not the precomputed matrices.
    assert len(pickle.dumps(operator)) < 4096
