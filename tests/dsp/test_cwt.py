"""CWT correctness tests: localization, linearity, jitter tolerance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import CWT, CwtConfig, cwt_magnitude


def burst(n, center, period, width, amplitude=1.0):
    t = np.arange(n, dtype=np.float64)
    envelope = np.exp(-0.5 * ((t - center) / width) ** 2)
    return amplitude * envelope * np.cos(2 * np.pi * (t - center) / period)


class TestShapes:
    def test_output_shape(self):
        cwt = CWT(315)
        out = cwt.transform(np.zeros((4, 315)))
        assert out.shape == (4, 50, 315)
        assert out.dtype == np.float32

    def test_single_trace_shape(self):
        cwt = CWT(315)
        assert cwt.transform(np.zeros(315)).shape == (50, 315)

    def test_paper_plane_size(self):
        assert CwtConfig().n_scales * 315 == 15750

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            CWT(315).transform(np.zeros((2, 100)))

    def test_blocks_match_full(self):
        cwt = CWT(128)
        rng = np.random.default_rng(0)
        traces = rng.normal(0, 1, (10, 128))
        full = cwt.transform(traces)
        blocked = np.concatenate(list(cwt.transform_blocks(traces, 3)))
        np.testing.assert_allclose(full, blocked, rtol=1e-6)

    def test_transform_points_matches_full(self):
        cwt = CWT(128)
        rng = np.random.default_rng(1)
        traces = rng.normal(0, 1, (5, 128))
        points = [(0, 10), (25, 64), (49, 100), (25, 20)]
        full = cwt.transform(traces)
        sparse = cwt.transform_points(traces, points)
        for col, (j, k) in enumerate(points):
            np.testing.assert_allclose(
                sparse[:, col], full[:, j, k], rtol=1e-5
            )


class TestLocalization:
    def test_energy_at_burst_location(self):
        cwt = CWT(315)
        trace = burst(315, center=150, period=8, width=12)
        image = cwt.transform(trace)
        j, k = np.unravel_index(np.argmax(image), image.shape)
        # time localization within the burst
        assert 130 <= k <= 170
        # scale localization near period * omega0 / (2 pi)
        expected_scale = 8 * cwt.config.omega0 / (2 * np.pi)
        assert 0.6 * expected_scale <= cwt.scales[j] <= 1.7 * expected_scale

    def test_scale_separates_two_periods(self):
        cwt = CWT(315)
        slow = burst(315, 100, period=24, width=20)
        fast = burst(315, 220, period=5, width=10)
        image = cwt.transform(slow + fast)
        scale_fast = np.argmax(image[:, 220])
        scale_slow = np.argmax(image[:, 100])
        assert cwt.scales[scale_slow] > 2.5 * cwt.scales[scale_fast]

    def test_dc_invisible(self):
        """Zero-mean wavelets ignore DC offsets (why CSA needs more).

        A DC offset over a finite window is a boxcar, so the window edges
        do leak into large scales; away from the edges and at scales whose
        support stays inside the window, the offset is invisible.
        """
        cwt = CWT(315)
        rng = np.random.default_rng(2)
        trace = rng.normal(0, 1, 315)
        base = cwt.transform(trace)
        shifted = cwt.transform(trace + 7.5)
        small_scales = cwt.scales <= 20
        interior = (small_scales, slice(65, 250))
        np.testing.assert_allclose(
            base[interior], shifted[interior], atol=0.15
        )

    def test_magnitude_jitter_tolerance(self):
        """|CWT| barely moves under 1-sample trigger jitter."""
        cwt = CWT(315)
        trace = burst(315, 150, period=8, width=10)
        a = cwt.transform(trace)
        b = cwt.transform(np.roll(trace, 1))
        peak = a.max()
        j, k = np.unravel_index(np.argmax(a), a.shape)
        assert abs(a[j, k] - b[j, k]) < 0.12 * peak


class TestLinearity:
    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.5, 4.0))
    def test_property_scaling(self, gain):
        cwt = CWT(64, CwtConfig(n_scales=8, scale_max=32))
        rng = np.random.default_rng(3)
        trace = rng.normal(0, 1, 64)
        base = cwt.transform(trace)
        scaled = cwt.transform(gain * trace)
        np.testing.assert_allclose(scaled, gain * base, rtol=1e-4, atol=1e-6)

    def test_convenience_function(self):
        out = cwt_magnitude(np.zeros((2, 64)), CwtConfig(n_scales=5, scale_max=16))
        assert out.shape == (2, 5, 64)
