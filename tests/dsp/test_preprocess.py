"""Preprocessing tests: alignment, DC removal, standardization."""

import numpy as np
import pytest

from repro.dsp import (
    align_traces,
    remove_dc,
    standardize_features,
    standardize_traces,
)
from repro.dsp.normalize import TemplateNormalizer


class TestAlign:
    def test_recovers_known_shifts(self):
        rng = np.random.default_rng(0)
        template = np.sin(np.linspace(0, 20, 200)) * np.hanning(200)
        shifts = [-3, 0, 2, 4]
        traces = np.stack([np.roll(template, s) for s in shifts])
        aligned, found = align_traces(traces, reference=template, max_shift=5)
        assert list(found) == shifts
        for row in aligned:
            assert np.corrcoef(row[10:-10], template[10:-10])[0, 1] > 0.99

    def test_zero_shift_identity(self):
        traces = np.tile(np.sin(np.linspace(0, 10, 100)), (3, 1))
        aligned, shifts = align_traces(traces, max_shift=3)
        assert np.all(shifts == 0)
        np.testing.assert_allclose(aligned, traces)


class TestStandardize:
    def test_remove_dc(self):
        traces = np.array([[1.0, 2.0, 3.0], [10.0, 10.0, 10.0]])
        out = remove_dc(traces)
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-12)

    def test_standardize_traces(self):
        rng = np.random.default_rng(1)
        traces = rng.normal(5, 3, (4, 200))
        out = standardize_traces(traces)
        np.testing.assert_allclose(out.mean(axis=1), 0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=1), 1, atol=1e-10)

    def test_standardize_constant_trace_safe(self):
        out = standardize_traces(np.ones((2, 10)))
        assert np.all(np.isfinite(out))

    def test_standardize_features_round_trip(self):
        rng = np.random.default_rng(2)
        train = rng.normal(3, 2, (50, 4))
        test = rng.normal(3, 2, (20, 4))
        train_std, mean, std = standardize_features(train)
        np.testing.assert_allclose(train_std.mean(axis=0), 0, atol=1e-10)
        test_std, _, _ = standardize_features(test, mean, std)
        assert test_std.shape == test.shape


class TestTemplateNormalizer:
    def test_removes_gain_and_offset(self):
        rng = np.random.default_rng(3)
        template = rng.normal(0, 1, 300)
        norm = TemplateNormalizer(template)
        distorted = 1.7 * template - 2.5
        recovered = norm.transform(distorted)[0]
        np.testing.assert_allclose(recovered, template, atol=1e-8)

    def test_fit_transform(self):
        rng = np.random.default_rng(4)
        traces = rng.normal(0, 1, (10, 100)) + np.sin(np.linspace(0, 9, 100))
        out = TemplateNormalizer().fit_transform(traces)
        assert out.shape == traces.shape

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TemplateNormalizer().transform(np.zeros((1, 10)))

    def test_constant_template_rejected(self):
        norm = TemplateNormalizer(np.ones(10))
        with pytest.raises(ValueError):
            norm.transform(np.zeros((1, 10)))
