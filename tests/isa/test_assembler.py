"""Tests for the two-pass assembler."""

import pytest

from repro.isa import AssemblyError, assemble, assemble_line, assemble_words
from repro.isa.assembler import Instruction
from repro.isa.specs import REGISTRY


class TestAssembleLine:
    def test_simple(self):
        instr = assemble_line("add r1, r2")
        assert instr.key == "ADD"
        assert instr.values == (1, 2)

    def test_case_insensitive_mnemonic(self):
        assert assemble_line("ADD R1, R2").key == "ADD"

    def test_comment_stripped(self):
        assert assemble_line("nop ; do nothing").key == "NOP"

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble_line("frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="no 'add' form"):
            assemble_line("add r1")

    def test_immediate_range_enforced(self):
        with pytest.raises(AssemblyError):
            assemble_line("ldi r16, 300")

    def test_ldi_rejects_low_register(self):
        with pytest.raises(AssemblyError):
            assemble_line("ldi r3, 5")

    def test_ld_variants_disambiguated(self):
        assert assemble_line("ld r5, X").key == "LD_X"
        assert assemble_line("ld r5, X+").key == "LD_X+"
        assert assemble_line("ld r5, -X").key == "LD_-X"
        assert assemble_line("ld r5, Y").key == "LD_Y"
        assert assemble_line("ld r5, Z+").key == "LD_Z+"

    def test_ldd_embedded_displacement(self):
        instr = assemble_line("ldd r5, Y+10")
        assert instr.key == "LDD_Y"
        assert instr.values == (5, 10)

    def test_std_operand_order(self):
        instr = assemble_line("std Z+63, r4")
        assert instr.key == "STD_Z"
        assert instr.values == (63, 4)

    def test_st_pointer_first(self):
        instr = assemble_line("st X+, r7")
        assert instr.key == "ST_X+"
        assert instr.values == (7,)

    def test_lpm_forms(self):
        assert assemble_line("lpm").key == "LPM_R0"
        assert assemble_line("lpm r3, Z").key == "LPM_Z"
        assert assemble_line("lpm r3, Z+").key == "LPM_Z+"

    def test_relative_branch_byte_offsets(self):
        assert assemble_line("breq .+4").values == (2,)
        assert assemble_line("brne .-6").values == (-3,)

    def test_alias_forms(self):
        assert assemble_line("tst r5").key == "TST"
        assert assemble_line("clr r6").key == "CLR"
        assert assemble_line("ser r17").key == "SER"
        assert assemble_line("sec").key == "SEC"

    def test_text_round_trip(self):
        for line in ("add r1, r2", "ldd r5, Y+10", "st -Z, r9", "lpm r3, Z+"):
            instr = assemble_line(line)
            assert assemble_line(instr.text()).encode() == instr.encode()


class TestInstructionValidation:
    def test_operand_count_checked(self):
        with pytest.raises(AssemblyError):
            Instruction(REGISTRY["ADD"], (1,))

    def test_operand_range_checked(self):
        with pytest.raises(Exception):
            Instruction(REGISTRY["ADD"], (1, 40))


class TestPrograms:
    def test_forward_and_backward_labels(self):
        program = assemble(
            """
            start:
                ldi r16, 10
            loop:
                dec r16
                brne loop
                rjmp start
            """
        )
        keys = [i.key for i in program]
        assert keys == ["LDI", "DEC", "BRNE", "RJMP"]
        assert program[2].values == (-2,)   # brne back over dec
        assert program[3].values == (-4,)   # rjmp back to start

    def test_label_to_absolute_jmp(self):
        program = assemble(
            """
                jmp target
                nop
            target:
                nop
            """
        )
        assert program[0].key == "JMP"
        assert program[0].values == (3,)  # jmp is 2 words + 1 nop

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("a:\nnop\na:\nnop")

    def test_unknown_label_is_error(self):
        with pytest.raises(AssemblyError):
            assemble("rjmp nowhere")

    def test_assemble_words_flat(self):
        words = assemble_words("ldi r16, 1\nlds r4, 0x100")
        assert len(words) == 3  # 1 + 2

    def test_label_on_same_line(self):
        program = assemble("here: nop\nrjmp here")
        assert program[1].values == (-2,)

    def test_empty_lines_and_comments_ignored(self):
        program = assemble("\n; top comment\n\nnop ; inline\n\n")
        assert len(program) == 1
