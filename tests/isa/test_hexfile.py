"""Intel HEX codec and CLI tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import assemble, disassemble
from repro.isa.hexfile import (
    HexFormatError,
    bytes_from_words,
    parse_ihex,
    to_ihex,
    words_from_bytes,
)


class TestParse:
    def test_simple_record(self):
        # two data bytes at address 0
        image = parse_ihex(":020000000C94" + f"{(-(0x02 + 0x0C + 0x94)) & 0xFF:02X}"
                           + "\n:00000001FF\n")
        assert image[0] == 0x0C and image[1] == 0x94

    def test_round_trip_bytes(self):
        data = bytes(range(48))
        image = parse_ihex(to_ihex(data))
        assert bytes(image[i] for i in range(len(data))) == data

    def test_extended_linear_address(self):
        text = (
            ":020000040001F9\n"      # base = 0x10000
            ":0100000042BD\n"        # byte 0x42 at 0x10000
            ":00000001FF\n"
        )
        image = parse_ihex(text)
        assert image[0x10000] == 0x42

    def test_bad_checksum(self):
        with pytest.raises(HexFormatError, match="checksum"):
            parse_ihex(":0100000042BE\n:00000001FF\n")

    def test_missing_start_code(self):
        with pytest.raises(HexFormatError, match="start code"):
            parse_ihex("0100000042BD\n:00000001FF\n")

    def test_missing_eof(self):
        with pytest.raises(HexFormatError, match="end-of-file"):
            parse_ihex(":0100000042BD\n")

    def test_data_after_eof(self):
        with pytest.raises(HexFormatError, match="after EOF"):
            parse_ihex(":00000001FF\n:0100000042BD\n")

    def test_bad_hex_digits(self):
        with pytest.raises(HexFormatError, match="hex digits"):
            parse_ihex(":01000000ZZBD\n:00000001FF\n")

    def test_length_mismatch(self):
        with pytest.raises(HexFormatError):
            parse_ihex(":050000004242BD\n:00000001FF\n")

    def test_unsupported_record_type(self):
        with pytest.raises(HexFormatError, match="record type"):
            parse_ihex(":0100000342BA\n:00000001FF\n")


class TestWords:
    def test_little_endian_pairing(self):
        words = words_from_bytes({0: 0x12, 1: 0x94})
        assert words == [0x9412]

    def test_gap_rejected(self):
        with pytest.raises(HexFormatError, match="gap"):
            words_from_bytes({0: 1, 1: 2, 4: 5, 5: 6})

    def test_bytes_from_words_inverse(self):
        words = [0x940C, 0x1234, 0x0000]
        image = {i: b for i, b in enumerate(bytes_from_words(words))}
        assert words_from_bytes(image) == words

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 0xFFFF), max_size=40))
    def test_property_word_byte_round_trip(self, words):
        data = bytes_from_words(words)
        image = parse_ihex(to_ihex(data))
        recovered = words_from_bytes(image) if words else []
        assert recovered == list(words)


class TestAssemblyRoundTrip:
    def test_program_through_hex(self):
        source = "ldi r16, 1\neor r16, r17\nsts 0x0200, r16"
        instructions = assemble(source)
        words = [w for i in instructions for w in i.encode()]
        hex_text = to_ihex(bytes_from_words(words))
        recovered = words_from_bytes(parse_ihex(hex_text))
        decoded = disassemble(recovered)
        assert [i.spec.key for i in decoded] == ["LDI", "EOR", "STS"]


class TestCli:
    def test_asm_disasm_round_trip(self, tmp_path, capsys):
        from repro.isa.__main__ import main

        asm = tmp_path / "p.asm"
        asm.write_text("ldi r16, 0x42\nrjmp .-4\n")
        hex_path = tmp_path / "p.hex"
        assert main(["asm", str(asm), "-o", str(hex_path)]) == 0
        capsys.readouterr()
        assert main(["disasm", str(hex_path)]) == 0
        out = capsys.readouterr().out
        assert "ldi r16, 66" in out
        assert "rjmp .-4" in out

    def test_words_dump(self, tmp_path, capsys):
        from repro.isa.__main__ import main

        asm = tmp_path / "p.asm"
        asm.write_text("nop\n")
        hex_path = tmp_path / "p.hex"
        main(["asm", str(asm), "-o", str(hex_path)])
        capsys.readouterr()
        assert main(["disasm", str(hex_path), "--words"]) == 0
        assert "0000: 0000" in capsys.readouterr().out
