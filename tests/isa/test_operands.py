"""Unit tests for operand kinds, codecs and text parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.operands import (
    OperandError,
    OperandKind,
    format_operand,
    from_field,
    parse_operand,
    to_field,
    validate,
)


class TestValidation:
    def test_reg_range(self):
        validate(OperandKind.REG, 0)
        validate(OperandKind.REG, 31)
        with pytest.raises(OperandError):
            validate(OperandKind.REG, 32)
        with pytest.raises(OperandError):
            validate(OperandKind.REG, -1)

    def test_reg_high_rejects_low_half(self):
        validate(OperandKind.REG_HIGH, 16)
        with pytest.raises(OperandError):
            validate(OperandKind.REG_HIGH, 15)

    def test_reg_mul_range(self):
        validate(OperandKind.REG_MUL, 16)
        validate(OperandKind.REG_MUL, 23)
        with pytest.raises(OperandError):
            validate(OperandKind.REG_MUL, 24)

    def test_pair_must_be_even(self):
        validate(OperandKind.REG_PAIR, 30)
        with pytest.raises(OperandError):
            validate(OperandKind.REG_PAIR, 1)

    def test_adiw_pair_restricted(self):
        for reg in (24, 26, 28, 30):
            validate(OperandKind.REG_PAIR_HIGH, reg)
        with pytest.raises(OperandError):
            validate(OperandKind.REG_PAIR_HIGH, 22)

    def test_rel7_range(self):
        validate(OperandKind.REL7, -64)
        validate(OperandKind.REL7, 63)
        with pytest.raises(OperandError):
            validate(OperandKind.REL7, 64)

    def test_imm8_range(self):
        validate(OperandKind.IMM8, 255)
        with pytest.raises(OperandError):
            validate(OperandKind.IMM8, 256)


class TestFieldCodec:
    def test_reg_high_offset(self):
        assert to_field(OperandKind.REG_HIGH, 16) == 0
        assert to_field(OperandKind.REG_HIGH, 31) == 15
        assert from_field(OperandKind.REG_HIGH, 15) == 31

    def test_pair_halving(self):
        assert to_field(OperandKind.REG_PAIR, 30) == 15
        assert from_field(OperandKind.REG_PAIR, 15) == 30

    def test_adiw_pair_encoding(self):
        assert to_field(OperandKind.REG_PAIR_HIGH, 24) == 0
        assert to_field(OperandKind.REG_PAIR_HIGH, 30) == 3

    def test_signed_twos_complement(self):
        assert to_field(OperandKind.REL7, -1) == 0x7F
        assert from_field(OperandKind.REL7, 0x7F) == -1
        assert to_field(OperandKind.REL12, -2048) == 0x800
        assert from_field(OperandKind.REL12, 0x800) == -2048

    @given(st.sampled_from(list(OperandKind)), st.data())
    def test_round_trip_all_kinds(self, kind, data):
        if kind is OperandKind.REG_PAIR:
            value = data.draw(st.integers(0, 15)) * 2
        elif kind is OperandKind.REG_PAIR_HIGH:
            value = data.draw(st.sampled_from([24, 26, 28, 30]))
        elif kind is OperandKind.REG_HIGH:
            value = data.draw(st.integers(16, 31))
        elif kind is OperandKind.REG_MUL:
            value = data.draw(st.integers(16, 23))
        elif kind is OperandKind.REL7:
            value = data.draw(st.integers(-64, 63))
        elif kind is OperandKind.REL12:
            value = data.draw(st.integers(-2048, 2047))
        elif kind is OperandKind.IMM8:
            value = data.draw(st.integers(0, 255))
        elif kind in (OperandKind.IMM6, OperandKind.DISP6, OperandKind.IO6):
            value = data.draw(st.integers(0, 63))
        elif kind is OperandKind.IO5:
            value = data.draw(st.integers(0, 31))
        elif kind in (OperandKind.BIT, OperandKind.SREG_BIT):
            value = data.draw(st.integers(0, 7))
        elif kind is OperandKind.ABS16:
            value = data.draw(st.integers(0, 0xFFFF))
        elif kind is OperandKind.ABS22:
            value = data.draw(st.integers(0, 0x3FFFFF))
        else:
            value = data.draw(st.integers(0, 31))
        assert from_field(kind, to_field(kind, value)) == value


class TestText:
    def test_format_register(self):
        assert format_operand(OperandKind.REG, 17) == "r17"

    def test_format_relative_is_byte_offset(self):
        assert format_operand(OperandKind.REL7, 2) == ".+4"
        assert format_operand(OperandKind.REL7, -3) == ".-6"

    def test_parse_register(self):
        assert parse_operand(OperandKind.REG, "r17") == 17
        assert parse_operand(OperandKind.REG, "R5") == 5

    def test_parse_rejects_non_register(self):
        with pytest.raises(OperandError):
            parse_operand(OperandKind.REG, "17")

    def test_parse_relative_byte_offset(self):
        assert parse_operand(OperandKind.REL7, ".+4") == 2
        assert parse_operand(OperandKind.REL7, ".-6") == -3

    def test_parse_relative_rejects_odd(self):
        with pytest.raises(OperandError):
            parse_operand(OperandKind.REL7, ".+3")

    def test_parse_hex_immediate(self):
        assert parse_operand(OperandKind.IMM8, "0xAB") == 0xAB
        assert parse_operand(OperandKind.IMM8, "0b1010") == 10

    def test_parse_out_of_range_immediate(self):
        with pytest.raises(OperandError):
            parse_operand(OperandKind.IMM8, "256")
