"""Unit tests for the opcode pattern compiler."""

import pytest

from repro.isa.encoding import EncodingError, compile_pattern


class TestCompile:
    def test_fixed_bits(self):
        pattern = compile_pattern(["0000 0000 0000 0000"])
        assert pattern.fixed_mask == (0xFFFF,)
        assert pattern.fixed_value == (0x0000,)
        assert pattern.fixed_bit_count == 16

    def test_field_positions_msb_first(self):
        pattern = compile_pattern(["0001 11rd dddd rrrr"])
        assert pattern.field_width("d") == 5
        assert pattern.field_width("r") == 5
        # d's MSB is bit 8 (position 7 from the left)
        assert pattern.fields["d"][0] == (0, 8)
        assert pattern.fields["r"][0] == (0, 9)

    def test_rejects_bad_length(self):
        with pytest.raises(EncodingError):
            compile_pattern(["0101"])

    def test_two_word_pattern(self):
        pattern = compile_pattern(
            ["1001 010k kkkk 110k", "kkkk kkkk kkkk kkkk"]
        )
        assert pattern.n_words == 2
        assert pattern.field_width("k") == 22


class TestEncodeDecode:
    def test_encode_known_adc(self):
        pattern = compile_pattern(["0001 11rd dddd rrrr"])
        words = pattern.encode({"d": 1, "r": 2})
        assert words == (0x1C12,)

    def test_encode_rejects_overflow(self):
        pattern = compile_pattern(["0001 11rd dddd rrrr"])
        with pytest.raises(EncodingError):
            pattern.encode({"d": 32, "r": 0})

    def test_encode_rejects_missing_field(self):
        pattern = compile_pattern(["0001 11rd dddd rrrr"])
        with pytest.raises(EncodingError):
            pattern.encode({"d": 1})

    def test_match_round_trip(self):
        pattern = compile_pattern(["0001 11rd dddd rrrr"])
        fields = {"d": 19, "r": 7}
        assert pattern.match(pattern.encode(fields)) == fields

    def test_match_rejects_wrong_fixed_bits(self):
        pattern = compile_pattern(["0001 11rd dddd rrrr"])
        assert pattern.match([0x0C12]) is None  # ADD, not ADC

    def test_match_needs_enough_words(self):
        pattern = compile_pattern(
            ["1001 010k kkkk 110k", "kkkk kkkk kkkk kkkk"]
        )
        assert pattern.match([0x940C]) is None

    def test_two_word_field_collection(self):
        pattern = compile_pattern(
            ["1001 010k kkkk 110k", "kkkk kkkk kkkk kkkk"]
        )
        words = pattern.encode({"k": 0x1234})
        assert words == (0x940C, 0x1234)
        assert pattern.match(words) == {"k": 0x1234}
        # high bits of k land in word 0
        words_high = pattern.encode({"k": 0x30000})
        assert words_high[0] != 0x940C
        assert pattern.match(words_high) == {"k": 0x30000}

    def test_adiw_split_immediate(self):
        pattern = compile_pattern(["1001 0110 KKdd KKKK"])
        words = pattern.encode({"K": 0x3F, "d": 2})
        assert pattern.match(words) == {"K": 0x3F, "d": 2}
