"""Static disassembler tests: round trips, alias preferences, errors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    DisassemblyError,
    REGISTRY,
    assemble_line,
    decode_one,
    disassemble,
    disassemble_text,
)
from repro.isa.assembler import Instruction
from repro.power.acquisition import random_instance
import numpy as np


class TestDecodeOne:
    def test_simple(self):
        instr, used = decode_one([0x1C12])
        assert instr.key == "ADC"
        assert instr.values == (1, 2)
        assert used == 1

    def test_two_word(self):
        instr, used = decode_one([0x940C, 0x1234])
        assert instr.key == "JMP"
        assert used == 2

    def test_alias_preference_tst(self):
        instr, _ = decode_one(assemble_line("and r5, r5").encode())
        assert instr.key == "TST"

    def test_alias_preference_named_branch(self):
        instr, _ = decode_one(assemble_line("brbs 1, .+4").encode())
        assert instr.key == "BREQ"

    def test_alias_preference_sreg(self):
        instr, _ = decode_one(assemble_line("bset 0").encode())
        assert instr.key == "SEC"

    def test_alias_preference_disabled(self):
        instr, _ = decode_one(
            assemble_line("and r5, r5").encode(), prefer_aliases=False
        )
        assert instr.key == "AND"

    def test_undecodable_word(self):
        # 0xFF0F has bit 3 set where SBRS requires 0bbb with bit3=0... use
        # a word that matches no pattern: 0x9509 is ICALL; craft unused
        # encoding 0x940B (DES-adjacent, absent from our table).
        with pytest.raises(DisassemblyError):
            decode_one([0x940B])


class TestDisassemble:
    def test_stream(self):
        words = []
        for line in ("ldi r16, 85", "lds r4, 0x0123", "eor r16, r17"):
            words.extend(assemble_line(line).encode())
        out = disassemble(words)
        assert [i.key for i in out] == ["LDI", "LDS", "EOR"]

    def test_text_output(self):
        words = assemble_line("ldi r20, 18").encode()
        assert disassemble_text(words) == "ldi r20, 18"


def _draw_instance(rng, key):
    return random_instance(key, rng, word_address=0)


@settings(max_examples=150, deadline=None)
@given(st.integers(0, 2**32 - 1), st.sampled_from(sorted(REGISTRY)))
def test_property_encode_decode_round_trip(seed, key):
    """Any encodable instruction decodes back to an equivalent encoding."""
    rng = np.random.default_rng(seed)
    instance = _draw_instance(rng, key)
    words = list(instance.encode())
    decoded, used = decode_one(words, prefer_aliases=False)
    assert used == len(words)
    # The decoded instruction must re-encode to the identical words —
    # aliases may decode to their canonical form, but bits are preserved.
    assert list(decoded.encode()) == words
