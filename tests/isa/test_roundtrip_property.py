"""Property tests: random linear programs round-trip through every layer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.isa import disassemble
from repro.power.acquisition import default_neighbor_pool, random_instance
from repro.sim import AvrCpu
from repro.sim.state import SRAM_START

POOL = default_neighbor_pool()


def random_program(seed, length=12):
    """A linear-safe random program (branches pinned, jumps to next)."""
    rng = np.random.default_rng(seed)
    instructions = []
    address = 0
    for _ in range(length):
        key = str(rng.choice(POOL))
        instance = random_instance(key, rng, word_address=address)
        instructions.append(instance)
        address += instance.spec.n_words
    return instructions


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_property_program_words_round_trip(seed):
    """assemble -> words -> disassemble -> re-encode is bit-identical."""
    instructions = random_program(seed)
    words = [w for i in instructions for w in i.encode()]
    decoded = disassemble(words, prefer_aliases=False)
    rewords = [w for i in decoded for w in i.encode()]
    assert rewords == words


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_property_random_program_executes_linearly(seed):
    """Every linear-safe random program runs to completion."""
    instructions = random_program(seed)
    cpu = AvrCpu(instructions)
    cpu.state.x = SRAM_START + 0x100
    cpu.state.y = SRAM_START + 0x200
    cpu.state.z = SRAM_START + 0x300
    events = cpu.run(max_steps=len(instructions))
    assert len(events) == len(instructions)
    # Event stream mirrors program order (skips included as bubbles).
    for event, instruction in zip(events, instructions):
        assert event.opcode_words == instruction.encode()


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_property_registers_stay_bytes(seed):
    """No execution path can leave a register outside [0, 255]."""
    instructions = random_program(seed, length=25)
    cpu = AvrCpu(instructions)
    rng = np.random.default_rng(seed)
    for reg in range(32):
        cpu.state.set_reg(reg, int(rng.integers(0, 256)))
    cpu.run(max_steps=len(instructions))
    for value in cpu.state.snapshot_regs():
        assert 0 <= value <= 255
