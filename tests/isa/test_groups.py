"""Tests for Table 2 grouping views."""

import pytest

from repro.isa import GROUPS, classification_classes, group_of, grouped_keys, table2_rows
from repro.isa.groups import CROSS_GROUP_DUPLICATES, PURE_SYNONYMS


class TestGroups:
    def test_group_of_known(self):
        assert group_of("ADC") == 1
        assert group_of("LDI") == 2
        assert group_of("SWAP") == 3
        assert group_of("BREQ") == 4
        assert group_of("LDS") == 5
        assert group_of("SEC") == 6
        assert group_of("SBI") == 7
        assert group_of("LPM_Z") == 8

    def test_group_of_residual_raises(self):
        with pytest.raises(KeyError):
            group_of("MUL")
        with pytest.raises(KeyError):
            group_of("NOP")

    def test_grouped_keys_count(self):
        assert len(grouped_keys()) == 112

    def test_grouped_keys_no_duplicates(self):
        keys = grouped_keys()
        assert len(set(keys)) == len(keys)


class TestClassificationClasses:
    def test_synonyms_excluded_by_default(self):
        g2 = classification_classes(2)
        assert "SBR" not in g2 and "CBR" not in g2
        assert "ORI" in g2 and "ANDI" in g2

    def test_synonyms_included_on_request(self):
        assert "SBR" in classification_classes(2, include_synonyms=True)

    def test_cross_group_duplicates_only_dropped_on_request(self):
        g7 = classification_classes(7)
        assert "BSET" in g7
        g7_dedup = classification_classes(7, exclude_cross_group=True)
        assert CROSS_GROUP_DUPLICATES.isdisjoint(g7_dedup)

    def test_group4_drops_brlo_brsh(self):
        g4 = classification_classes(4)
        assert "BRLO" not in g4 and "BRSH" not in g4
        assert "BRCS" in g4 and "BRCC" in g4


class TestTable2:
    def test_rows_complete(self):
        rows = table2_rows()
        assert len(rows) == 8
        assert sum(r["n_instructions"] for r in rows) == 112

    def test_row_fields(self):
        row = table2_rows()[0]
        assert row["group"] == 1
        assert "ADD" in row["instructions"]
        assert row["n_instructions"] == 12
        assert any("Rd" in shape for shape in row["operand_shapes"])
