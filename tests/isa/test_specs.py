"""Tests of the instruction spec table itself (counts, encodings, syntax)."""

import pytest

from repro.isa import REGISTRY, MNEMONIC_INDEX, encode, spec_for
from repro.isa.groups import EXPECTED_SIZES, GROUPS
from repro.isa.specs import DECODE_ORDER


class TestTableShape:
    def test_table2_group_sizes(self):
        for group, expected in EXPECTED_SIZES.items():
            assert len(GROUPS[group]) == expected, f"group {group}"

    def test_112_grouped_instructions(self):
        assert sum(len(v) for v in GROUPS.values()) == 112

    def test_unique_keys(self):
        assert len({s.key for s in REGISTRY.values()}) == len(REGISTRY)

    def test_aliases_reference_existing_canonicals(self):
        for spec in REGISTRY.values():
            if spec.alias_of is not None:
                assert spec.alias_of in REGISTRY
                assert not REGISTRY[spec.alias_of].is_alias

    def test_decode_order_has_only_canonicals(self):
        assert all(not s.is_alias for s in DECODE_ORDER)

    def test_decode_order_most_specific_first(self):
        counts = [s.compiled.fixed_bit_count for s in DECODE_ORDER]
        assert counts == sorted(counts, reverse=True)

    def test_mnemonic_index_covers_registry(self):
        keys = {s.key for specs in MNEMONIC_INDEX.values() for s in specs}
        assert keys == set(REGISTRY)

    def test_spec_for_error_message(self):
        with pytest.raises(KeyError, match="unknown instruction class"):
            spec_for("BOGUS")


# Golden encodings cross-checked against the AVR instruction set manual /
# avr-gcc output.
GOLDEN = [
    ("NOP", (), (0x0000,)),
    ("MOVW", (26, 30), (0x01DF,)),
    ("ADD", (1, 2), (0x0C12,)),
    ("ADC", (1, 2), (0x1C12,)),
    ("SUB", (16, 17), (0x1B01,)),
    ("SBC", (3, 4), (0x0834,)),
    ("AND", (5, 6), (0x2056,)),
    ("OR", (7, 8), (0x2878,)),
    ("EOR", (9, 10), (0x249A,)),
    ("CP", (11, 12), (0x14BC,)),
    ("CPC", (13, 14), (0x04DE,)),
    ("CPSE", (15, 16), (0x12F0,)),
    ("MOV", (17, 18), (0x2F12,)),
    ("LDI", (16, 0xAB), (0xEA0B,)),
    ("CPI", (17, 0x10), (0x3110,)),
    ("SUBI", (18, 0xFF), (0x5F2F,)),
    ("SBCI", (19, 0x01), (0x4031,)),
    ("ANDI", (20, 0x0F), (0x704F,)),
    ("ORI", (21, 0xF0), (0x6F50,)),
    ("ADIW", (24, 1), (0x9601,)),
    ("ADIW", (30, 63), (0x96FF,)),
    ("SBIW", (26, 32), (0x9790,)),
    ("COM", (22, ), (0x9560,)),
    ("NEG", (23, ), (0x9571,)),
    ("INC", (24, ), (0x9583,)),
    ("DEC", (25, ), (0x959A,)),
    ("LSR", (26, ), (0x95A6,)),
    ("ROR", (27, ), (0x95B7,)),
    ("ASR", (28, ), (0x95C5,)),
    ("SWAP", (29, ), (0x95D2,)),
    ("RJMP", (-1, ), (0xCFFF,)),
    ("RJMP", (0, ), (0xC000,)),
    ("JMP", (0x1234, ), (0x940C, 0x1234)),
    ("CALL", (0x0100, ), (0x940E, 0x0100)),
    ("BREQ", (5, ), (0xF029,)),
    ("BRNE", (-3, ), (0xF7E9,)),
    ("BRCS", (1, ), (0xF008,)),
    ("LDS", (4, 0x0100), (0x9040, 0x0100)),
    ("STS", (0x0200, 5), (0x9250, 0x0200)),
    ("LD_X", (6, ), (0x906C,)),
    ("LD_X+", (7, ), (0x907D,)),
    ("LD_-X", (8, ), (0x908E,)),
    ("LD_Y", (9, ), (0x8098,)),
    ("LD_Z", (10, ), (0x80A0,)),
    ("LDD_Y", (11, 10), (0x84BA,)),
    ("LDD_Z", (12, 63), (0xACC7,)),
    ("ST_X+", (13, ), (0x92DD,)),
    ("STD_Y", (2, 14), (0x82EA,)),
    ("PUSH", (15, ), (0x92FF,)),
    ("POP", (16, ), (0x910F,)),
    ("LPM_R0", (), (0x95C8,)),
    ("LPM_Z", (17, ), (0x9114,)),
    ("LPM_Z+", (18, ), (0x9125,)),
    ("SEC", (), (0x9408,)),
    ("CLC", (), (0x9488,)),
    ("SEI", (), (0x9478,)),
    ("CLI", (), (0x94F8,)),
    ("BSET", (6, ), (0x9468,)),
    ("BCLR", (0, ), (0x9488,)),
    ("SBI", (5, 5), (0x9A2D,)),
    ("CBI", (5, 5), (0x982D,)),
    ("SBIC", (0x1F, 7), (0x99FF,)),
    ("SBIS", (0, 0), (0x9B00,)),
    ("SBRC", (19, 3), (0xFD33,)),
    ("SBRS", (20, 4), (0xFF44,)),
    ("BST", (21, 5), (0xFB55,)),
    ("BLD", (22, 6), (0xF966,)),
    ("IN", (23, 0x3E), (0xB77E,)),
    ("OUT", (0x3F, 24), (0xBF8F,)),
    ("MUL", (25, 26), (0x9F9A,)),
    ("MULS", (16, 17), (0x0201,)),
    ("MULSU", (16, 17), (0x0301,)),
    ("FMUL", (17, 18), (0x031A,)),
    ("RET", (), (0x9508,)),
    ("RETI", (), (0x9518,)),
    ("ICALL", (), (0x9509,)),
    ("IJMP", (), (0x9409,)),
    ("RCALL", (0, ), (0xD000,)),
    ("TST", (3, ), (0x2033,)),
    ("CLR", (4, ), (0x2444,)),
    ("LSL", (5, ), (0x0C55,)),
    ("ROL", (6, ), (0x1C66,)),
    ("SER", (16, ), (0xEF0F,)),
    ("SBR", (16, 3), (0x6003,)),
    ("CBR", (17, 0x0F), (0x7F10,)),
    ("SLEEP", (), (0x9588,)),
    ("WDR", (), (0x95A8,)),
    ("BREAK", (), (0x9598,)),
    ("SPM", (), (0x95E8,)),
]


@pytest.mark.parametrize("key,values,expected", GOLDEN,
                         ids=[f"{g[0]}-{i}" for i, g in enumerate(GOLDEN)])
def test_golden_encoding(key, values, expected):
    assert encode(key, *values) == expected
